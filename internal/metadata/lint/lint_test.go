package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// header is a minimal valid schema + storage prefix shared by the bad
// examples; the layout under test starts on line 8.
const header = `[S]
I = int
J = int
A = float
B = double

[Data]
DatasetDescription = S
DIR[0] = node0/d0
DIR[1] = node1/d1

`

// checkSrc runs the checker over header+layout and returns diagnostics.
func checkSrc(t *testing.T, layout string) []Diagnostic {
	t.Helper()
	return Check("test.dvd", header+layout)
}

// wantDiag asserts exactly one diagnostic of the given code exists and
// returns it.
func wantDiag(t *testing.T, ds []Diagnostic, code string) Diagnostic {
	t.Helper()
	var found []Diagnostic
	for _, d := range ds {
		if d.Code == code {
			found = append(found, d)
		}
	}
	if len(found) != 1 {
		t.Fatalf("want exactly 1 %q diagnostic, got %d in %v", code, len(found), ds)
	}
	return found[0]
}

func TestSyntaxDiagnostic(t *testing.T) {
	ds := Check("bad.dvd", "Dataset \"x\" {")
	d := wantDiag(t, ds, "syntax")
	if d.Severity != SevError {
		t.Errorf("severity = %s, want error", d.Severity)
	}
}

func TestSpanOverlap(t *testing.T) {
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP I 0:5:1 { A B A } }
  DATA { DIR[0]/f }
}
`)
	d := wantDiag(t, ds, "span-overlap")
	if d.Line != 14 {
		t.Errorf("line = %d, want 14 (the second A)", d.Line)
	}
	if !strings.Contains(d.Message, `"A"`) {
		t.Errorf("message %q does not name the attribute", d.Message)
	}
}

func TestLoopExtentEmptyRange(t *testing.T) {
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP I 5:1:1 { A } }
  DATA { DIR[0]/f }
}
`)
	d := wantDiag(t, ds, "loop-extent")
	if !strings.Contains(d.Message, "empty range 5:1") {
		t.Errorf("message = %q", d.Message)
	}
	if d.Line != 14 {
		t.Errorf("line = %d, want 14", d.Line)
	}
}

func TestLoopExtentBadStep(t *testing.T) {
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP I 0:5:0 { A } }
  DATA { DIR[0]/f }
}
`)
	if d := wantDiag(t, ds, "loop-extent"); !strings.Contains(d.Message, "non-positive step") {
		t.Errorf("message = %q", d.Message)
	}
}

func TestLoopBindingCollision(t *testing.T) {
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP I 0:5:1 { A } }
  DATA { DIR[0]/f$I I = 0:5:1 }
}
`)
	if d := wantDiag(t, ds, "loop-extent"); !strings.Contains(d.Message, "also bound") {
		t.Errorf("message = %q", d.Message)
	}
}

func TestDimMismatch(t *testing.T) {
	ds := checkSrc(t, `Dataset "root" {
  DATATYPE { S }
  Dataset "d1" {
    DATASPACE { LOOP I 0:5:1 { A } }
    DATA { DIR[0]/f0 }
  }
  Dataset "d2" {
    DATASPACE { LOOP I 0:3:1 { B } }
    DATA { DIR[0]/f1 }
  }
}
`)
	d := wantDiag(t, ds, "dim-mismatch")
	if d.Severity != SevWarning {
		t.Errorf("severity = %s, want warning", d.Severity)
	}
	if !strings.Contains(d.Message, `"I"`) {
		t.Errorf("message = %q", d.Message)
	}
}

func TestTypeConflict(t *testing.T) {
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S A = int }
  DATASPACE { LOOP I 0:5:1 { A B } }
  DATA { DIR[0]/f }
}
`)
	d := wantDiag(t, ds, "type-conflict")
	if !strings.Contains(d.Message, "4 bytes") || !strings.Contains(d.Message, `"A"`) {
		t.Errorf("message = %q", d.Message)
	}
}

func TestAttrUnknown(t *testing.T) {
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP I 0:5:1 { A NOPE } }
  DATA { DIR[0]/f }
}
`)
	d := wantDiag(t, ds, "attr-unknown")
	if d.Line != 14 {
		t.Errorf("line = %d, want 14", d.Line)
	}
	// The positioned finding must suppress the coarse validate one.
	for _, other := range ds {
		if other.Code == "validate" {
			t.Errorf("coarse validate diagnostic not suppressed: %v", other)
		}
	}
}

func TestAttrUnbound(t *testing.T) {
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP I 0:5:1 { A } }
  DATA { DIR[0]/f DIR[1]/g }
}
`)
	// J and B are never laid out (I is a loop var, A is spanned).
	var names []string
	for _, d := range ds {
		if d.Code == "attr-unbound" {
			names = append(names, d.Message)
			if d.Severity != SevWarning {
				t.Errorf("severity = %s, want warning", d.Severity)
			}
			if d.Line == 0 {
				t.Errorf("no position on %v", d)
			}
		}
	}
	if len(names) != 2 {
		t.Fatalf("want 2 attr-unbound (J, B), got %v", names)
	}
}

func TestDirUnused(t *testing.T) {
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP I 0:5:1 { A B J } }
  DATA { DIR[0]/f }
}
`)
	d := wantDiag(t, ds, "dir-unused")
	if d.Line != 10 {
		t.Errorf("line = %d, want 10 (the DIR[1] line)", d.Line)
	}
}

func TestDirRange(t *testing.T) {
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP I 0:5:1 { A } }
  DATA { DIR[7]/f }
}
`)
	d := wantDiag(t, ds, "dir-range")
	if !strings.Contains(d.Message, "DIR[7]") {
		t.Errorf("message = %q", d.Message)
	}
	// Expansion failed, so dir-unused must be suppressed.
	for _, other := range ds {
		if other.Code == "dir-unused" {
			t.Errorf("dir-unused not suppressed after failed expansion: %v", other)
		}
	}
}

func TestFileOverlapAcrossClauses(t *testing.T) {
	ds := checkSrc(t, `Dataset "root" {
  DATATYPE { S }
  Dataset "d1" {
    DATASPACE { LOOP I 0:5:1 { A } }
    DATA { DIR[0]/same }
  }
  Dataset "d2" {
    DATASPACE { LOOP J 0:3:1 { B } }
    DATA { DIR[0]/same }
  }
}
`)
	d := wantDiag(t, ds, "file-overlap")
	if !strings.Contains(d.Message, "node0:d0/same") {
		t.Errorf("message = %q", d.Message)
	}
}

func TestFileOverlapWithinClause(t *testing.T) {
	// The binding variable I appears in neither the dir expression nor
	// the name template, so both of its values produce the same file.
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP J 0:3:1 { A B } }
  DATA { DIR[0]/f I = 0:1:1 }
}
`)
	if got := wantDiag(t, ds, "file-overlap"); got.Severity != SevError {
		t.Errorf("severity = %s", got.Severity)
	}
}

func TestFileClauseBadBinding(t *testing.T) {
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP J 0:3:1 { A } }
  DATA { DIR[0]/f$I I = 5:1:1 }
}
`)
	d := wantDiag(t, ds, "file-clause")
	if !strings.Contains(d.Message, "empty range") {
		t.Errorf("message = %q", d.Message)
	}
}

func TestExpansionCapDoesNotExplode(t *testing.T) {
	// ~10^12 combinations; the checker must stay bounded and silent
	// about dir usage.
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP J 0:3:1 { A } }
  DATA { DIR[0]/f.$I.$K I = 0:999999:1 K = 0:999999:1 }
}
`)
	for _, d := range ds {
		if d.Code == "dir-unused" {
			t.Errorf("dir-unused reported despite truncated expansion: %v", d)
		}
	}
}

func TestValidateFallback(t *testing.T) {
	// Leaf with neither DATASPACE nor CHUNKED: none of the positioned
	// passes fire, so the coarse validate diagnostic must surface.
	ds := checkSrc(t, `Dataset "d" {
  DATATYPE { S }
  DATA { DIR[0]/f DIR[1]/g }
}
`)
	d := wantDiag(t, ds, "validate")
	if d.Line != 12 {
		t.Errorf("line = %d, want 12 (the Dataset keyword)", d.Line)
	}
}

// TestShippedDescriptorsClean pins the acceptance criterion: every
// descriptor the repo ships parses and checks without diagnostics.
func TestShippedDescriptorsClean(t *testing.T) {
	paths, err := filepath.Glob("../../codegen/testdata/*.dvd")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no shipped descriptors found: %v", err)
	}
	for _, p := range paths {
		ds, err := CheckFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		for _, d := range ds {
			t.Errorf("%s: unexpected diagnostic: %s", p, d)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "x.dvd", Line: 3, Col: 7, Severity: SevError, Code: "span-overlap", Message: "boom"}
	if got, want := d.String(), "x.dvd:3:7: error: boom [span-overlap]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d2 := Diagnostic{File: "x.dvd", Severity: SevWarning, Code: "c", Message: "m"}
	if got, want := d2.String(), "x.dvd: warning: m [c]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// replicaSrc builds a two-directory descriptor whose DIR lines are
// given verbatim, with a layout using both directories.
func replicaSrc(dir0, dir1 string) string {
	return `[S]
I = int
A = float

[Data]
DatasetDescription = S
DIR[0] = ` + dir0 + `
DIR[1] = ` + dir1 + `

Dataset "d" {
  DATATYPE { S }
  DATASPACE { LOOP I 0:5:1 { A } }
  DATA { DIR[$DIRID]/f DIRID = 0:1:1 }
}
`
}

func TestReplicaDup(t *testing.T) {
	ds := Check("test.dvd", replicaSrc("NODES node0, node0/d0", "node1/d1"))
	d := wantDiag(t, ds, "replica-dup")
	if d.Severity != SevError {
		t.Errorf("severity = %s, want error", d.Severity)
	}
	if d.Line != 7 {
		t.Errorf("line = %d, want 7 (the DIR[0] line)", d.Line)
	}
	if !strings.Contains(d.Message, `"node0"`) {
		t.Errorf("message %q does not name the node", d.Message)
	}
	// The positioned pass suppresses the coarse validate fallback.
	for _, diag := range ds {
		if diag.Code == "validate" {
			t.Errorf("validate fallback not suppressed: %v", diag)
		}
	}
}

func TestReplicaUnknown(t *testing.T) {
	ds := Check("test.dvd", replicaSrc("NODES node0, standby/d0", "node1/d1"))
	d := wantDiag(t, ds, "replica-unknown")
	if d.Severity != SevWarning {
		t.Errorf("severity = %s, want warning", d.Severity)
	}
	if !strings.Contains(d.Message, `"standby"`) {
		t.Errorf("message %q does not name the node", d.Message)
	}
	if HasErrors(ds) {
		t.Errorf("warning-only descriptor reported errors: %v", ds)
	}
}

// TestReplicaChainClean checks the canonical chained replication
// layout — every node primary of one directory, replica of another —
// produces no replica diagnostics.
func TestReplicaChainClean(t *testing.T) {
	ds := Check("test.dvd", replicaSrc("NODES node0, node1/d0", "NODES node1, node0/d1"))
	for _, d := range ds {
		if strings.HasPrefix(d.Code, "replica-") {
			t.Errorf("clean chained replica set flagged: %v", d)
		}
	}
}
