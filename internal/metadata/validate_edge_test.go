// Edge-case coverage for Validate, in an external test package so the
// cases can also be cross-checked against the descriptor linter
// (internal/metadata/lint imports metadata, so the in-package tests
// cannot import it back).
package metadata_test

import (
	"strings"
	"testing"

	"datavirt/internal/metadata"
	desclint "datavirt/internal/metadata/lint"
)

const edgeHeader = `
[S]
A = int
B = float
[D]
DatasetDescription = S
DIR[0] = n0/d
`

func hasCode(ds []desclint.Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

// A LOOP whose constant bounds describe zero iterations is structurally
// valid — Validate only checks binding/shadowing rules — but describes
// an empty dataspace; the static checker is the layer that catches it.
func TestZeroExtentLoopSplitsAcrossLayers(t *testing.T) {
	src := edgeHeader + `Dataset "x" { DATATYPE { S } DATASPACE { LOOP I 5:1:1 { A } } DATA { DIR[0]/f } }`
	if _, err := metadata.Parse(src); err != nil {
		t.Fatalf("Validate should accept a zero-extent loop (extent checks are the linter's): %v", err)
	}
	ds := desclint.Check("zero.dvd", src)
	if !hasCode(ds, "loop-extent") {
		t.Errorf("descriptor linter did not flag the zero-extent loop: %v", ds)
	}
}

// Duplicate attribute names inside one schema section are rejected at
// parse time by the schema builder.
func TestDuplicateSchemaAttributeRejected(t *testing.T) {
	src := strings.Replace(edgeHeader, "B = float", "A = float", 1) +
		`Dataset "x" { DATATYPE { S } DATASPACE { A } DATA { DIR[0]/f } }`
	_, err := metadata.Parse(src)
	if err == nil {
		t.Fatal("duplicate schema attribute accepted")
	}
	if !strings.Contains(err.Error(), "duplicate attribute") {
		t.Errorf("error does not mention the duplicate attribute: %v", err)
	}
}

// A DATATYPE extra that re-declares a schema attribute is silently
// shadowed by Validate (the attribute table is last-writer-wins); when
// the kinds disagree the static checker reports the conflict.
func TestDatatypeExtraShadowingSchemaAttr(t *testing.T) {
	src := edgeHeader + `Dataset "x" { DATATYPE { S A = short int } DATASPACE { A B } DATA { DIR[0]/f } }`
	if _, err := metadata.Parse(src); err != nil {
		t.Fatalf("Validate should tolerate a shadowing DATATYPE extra: %v", err)
	}
	ds := desclint.Check("shadow.dvd", src)
	if !hasCode(ds, "type-conflict") {
		t.Errorf("descriptor linter did not flag the kind conflict on A: %v", ds)
	}
}

// An empty DATASET block is a leaf with no clauses at all; Validate
// rejects it (no DATATYPE when nothing is inherited, no DATA clauses
// when one is), naming the offending dataset.
func TestEmptyDatasetBlockRejected(t *testing.T) {
	cases := map[string]string{
		"bare":      edgeHeader + `Dataset "x" { }`,
		"inherited": edgeHeader + `Dataset "x" { DATATYPE { S } Dataset "y" { } }`,
	}
	for name, src := range cases {
		_, err := metadata.Parse(src)
		if err == nil {
			t.Errorf("%s: empty DATASET block accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), `"x"`) && !strings.Contains(err.Error(), `"y"`) {
			t.Errorf("%s: error does not name the dataset: %v", name, err)
		}
		if ds := desclint.Check(name+".dvd", src); !desclint.HasErrors(ds) {
			t.Errorf("%s: descriptor linter reported no error: %v", name, ds)
		}
	}
}

// Validate accepts a loop variable that matches an integral schema
// attribute (the ipars TIME pattern) but rejects a non-integral match.
func TestLoopVariableAttributeKinds(t *testing.T) {
	good := edgeHeader + `Dataset "x" { DATATYPE { S } DATASPACE { LOOP A 0:9:1 { B } } DATA { DIR[0]/f } }`
	if _, err := metadata.Parse(good); err != nil {
		t.Errorf("integral loop attribute rejected: %v", err)
	}
	bad := edgeHeader + `Dataset "x" { DATATYPE { S } DATASPACE { LOOP B 0:9:1 { A } } DATA { DIR[0]/f } }`
	if _, err := metadata.Parse(bad); err == nil {
		t.Error("non-integral loop attribute accepted")
	}
}
