package metadata

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"datavirt/internal/schema"
)

// XML embedding of the description language. The paper notes that "the
// description language we have developed can easily be embedded in an
// XML file and made machine independent" (§3.1); this file implements
// that embedding. The element structure mirrors the three components:
//
//	<descriptor>
//	  <schema name="IPARS">
//	    <attribute name="REL" type="short int"/> ...
//	  </schema>
//	  <storage dataset="IparsData" schema="IPARS">
//	    <dir index="0" node="osu0" path="ipars"/> ...
//	  </storage>
//	  <dataset name="IparsData">
//	    <datatype schema="IPARS"/>
//	    <dataindex attrs="REL TIME"/>
//	    <dataset name="ipars2">
//	      <dataspace>
//	        <loop var="TIME" lo="1" hi="500" step="1">
//	          <loop var="GRID" lo="($DIRID*100+1)" hi="(($DIRID+1)*100)">
//	            <attr name="SOIL"/> <attr name="SGAS"/>
//	          </loop>
//	        </loop>
//	      </dataspace>
//	      <data>
//	        <file dir="$DIRID" name="DATA$REL">
//	          <bind var="REL" lo="0" hi="3"/> <bind var="DIRID" lo="0" hi="3"/>
//	        </file>
//	      </data>
//	    </dataset>
//	  </dataset>
//	</descriptor>
//
// Loop bounds and dir selectors carry description-language expressions
// as text; ordered mixed content (attributes interleaved with loops)
// is preserved.

// ToXML renders the descriptor as an XML document.
func ToXML(d *Descriptor) (string, error) {
	var b strings.Builder
	b.WriteString(xml.Header)
	enc := xml.NewEncoder(&b)
	enc.Indent("", "  ")
	if err := encodeDescriptor(enc, d); err != nil {
		return "", err
	}
	if err := enc.Flush(); err != nil {
		return "", err
	}
	b.WriteByte('\n')
	return b.String(), nil
}

func elem(name string, attrs ...xml.Attr) xml.StartElement {
	return xml.StartElement{Name: xml.Name{Local: name}, Attr: attrs}
}

func attr(name, value string) xml.Attr {
	return xml.Attr{Name: xml.Name{Local: name}, Value: value}
}

func encodeDescriptor(enc *xml.Encoder, d *Descriptor) error {
	root := elem("descriptor")
	if err := enc.EncodeToken(root); err != nil {
		return err
	}
	for _, s := range d.Schemas {
		se := elem("schema", attr("name", s.Name()))
		if err := enc.EncodeToken(se); err != nil {
			return err
		}
		for _, a := range s.Attrs() {
			ae := elem("attribute", attr("name", a.Name), attr("type", a.Kind.String()))
			if err := enc.EncodeToken(ae); err != nil {
				return err
			}
			if err := enc.EncodeToken(ae.End()); err != nil {
				return err
			}
		}
		if err := enc.EncodeToken(se.End()); err != nil {
			return err
		}
	}
	if d.Storage != nil {
		se := elem("storage", attr("dataset", d.Storage.DatasetName), attr("schema", d.Storage.SchemaName))
		if err := enc.EncodeToken(se); err != nil {
			return err
		}
		for _, dir := range d.Storage.Dirs {
			attrs := []xml.Attr{attr("index", fmt.Sprint(dir.Index)),
				attr("node", dir.Node), attr("path", dir.Path)}
			if len(dir.Nodes) > 1 {
				// Replica set: the node attribute stays the primary for
				// compatibility; nodes carries the full ordered set.
				attrs = append(attrs, attr("nodes", strings.Join(dir.Nodes, ",")))
			}
			de := elem("dir", attrs...)
			if err := enc.EncodeToken(de); err != nil {
				return err
			}
			if err := enc.EncodeToken(de.End()); err != nil {
				return err
			}
		}
		if err := enc.EncodeToken(se.End()); err != nil {
			return err
		}
	}
	if d.Layout != nil {
		if err := encodeDataset(enc, d.Layout); err != nil {
			return err
		}
	}
	return enc.EncodeToken(root.End())
}

func encodeDataset(enc *xml.Encoder, n *DatasetNode) error {
	attrs := []xml.Attr{attr("name", n.Name)}
	if n.ByteOrder != "" {
		attrs = append(attrs, attr("byteorder", n.ByteOrder))
	}
	de := elem("dataset", attrs...)
	if err := enc.EncodeToken(de); err != nil {
		return err
	}
	if n.TypeName != "" || len(n.ExtraAttrs) > 0 {
		var attrs []xml.Attr
		if n.TypeName != "" {
			attrs = append(attrs, attr("schema", n.TypeName))
		}
		te := elem("datatype", attrs...)
		if err := enc.EncodeToken(te); err != nil {
			return err
		}
		for _, a := range n.ExtraAttrs {
			ae := elem("attribute", attr("name", a.Name), attr("type", a.Kind.String()))
			if err := enc.EncodeToken(ae); err != nil {
				return err
			}
			if err := enc.EncodeToken(ae.End()); err != nil {
				return err
			}
		}
		if err := enc.EncodeToken(te.End()); err != nil {
			return err
		}
	}
	if len(n.IndexAttrs) > 0 {
		ie := elem("dataindex", attr("attrs", strings.Join(n.IndexAttrs, " ")))
		if err := enc.EncodeToken(ie); err != nil {
			return err
		}
		if err := enc.EncodeToken(ie.End()); err != nil {
			return err
		}
	}
	if n.Space != nil {
		se := elem("dataspace")
		if err := enc.EncodeToken(se); err != nil {
			return err
		}
		if err := encodeSpaceItems(enc, n.Space.Items); err != nil {
			return err
		}
		if err := enc.EncodeToken(se.End()); err != nil {
			return err
		}
	}
	if len(n.Chunked) > 0 {
		ce := elem("chunked", attr("attrs", strings.Join(n.Chunked, " ")))
		if err := enc.EncodeToken(ce); err != nil {
			return err
		}
		if err := enc.EncodeToken(ce.End()); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := encodeDataset(enc, c); err != nil {
			return err
		}
	}
	if err := encodeFileBlock(enc, "data", n.Files); err != nil {
		return err
	}
	if err := encodeFileBlock(enc, "indexfile", n.IndexFiles); err != nil {
		return err
	}
	return enc.EncodeToken(de.End())
}

func encodeFileBlock(enc *xml.Encoder, name string, clauses []FileClause) error {
	if len(clauses) == 0 {
		return nil
	}
	be := elem(name)
	if err := enc.EncodeToken(be); err != nil {
		return err
	}
	for i := range clauses {
		fc := &clauses[i]
		fe := elem("file", attr("dir", fc.Dir.String()), attr("name", fc.NameString()))
		if err := enc.EncodeToken(fe); err != nil {
			return err
		}
		for _, bnd := range fc.Bindings {
			bnde := elem("bind", attr("var", bnd.Var), attr("lo", bnd.Lo.String()),
				attr("hi", bnd.Hi.String()), attr("step", bnd.Step.String()))
			if err := enc.EncodeToken(bnde); err != nil {
				return err
			}
			if err := enc.EncodeToken(bnde.End()); err != nil {
				return err
			}
		}
		if err := enc.EncodeToken(fe.End()); err != nil {
			return err
		}
	}
	return enc.EncodeToken(be.End())
}

func encodeSpaceItems(enc *xml.Encoder, items []SpaceItem) error {
	for _, it := range items {
		switch v := it.(type) {
		case AttrRef:
			ae := elem("attr", attr("name", v.Name))
			if err := enc.EncodeToken(ae); err != nil {
				return err
			}
			if err := enc.EncodeToken(ae.End()); err != nil {
				return err
			}
		case *Loop:
			le := elem("loop", attr("var", v.Var), attr("lo", v.Lo.String()),
				attr("hi", v.Hi.String()), attr("step", v.Step.String()))
			if err := enc.EncodeToken(le); err != nil {
				return err
			}
			if err := encodeSpaceItems(enc, v.Body); err != nil {
				return err
			}
			if err := enc.EncodeToken(le.End()); err != nil {
				return err
			}
		default:
			return fmt.Errorf("metadata: unknown space item %T", it)
		}
	}
	return nil
}

// ParseXML parses the XML embedding back into a validated descriptor.
func ParseXML(src string) (*Descriptor, error) {
	dec := xml.NewDecoder(strings.NewReader(src))
	d := &Descriptor{}
	rootSeen := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("metadata: xml: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch se.Name.Local {
		case "descriptor":
			rootSeen = true
		case "schema":
			s, err := decodeSchema(dec, se)
			if err != nil {
				return nil, err
			}
			d.Schemas = append(d.Schemas, s)
		case "storage":
			st, err := decodeStorage(dec, se)
			if err != nil {
				return nil, err
			}
			if d.Storage != nil {
				return nil, fmt.Errorf("metadata: xml: duplicate <storage>")
			}
			d.Storage = st
		case "dataset":
			if d.Layout != nil {
				return nil, fmt.Errorf("metadata: xml: multiple root <dataset> elements")
			}
			n, err := decodeDataset(dec, se)
			if err != nil {
				return nil, err
			}
			d.Layout = n
		default:
			if err := dec.Skip(); err != nil {
				return nil, err
			}
		}
	}
	if !rootSeen {
		return nil, fmt.Errorf("metadata: xml: no <descriptor> root element")
	}
	if err := Validate(d); err != nil {
		return nil, err
	}
	return d, nil
}

func attrOf(se xml.StartElement, name string) string {
	for _, a := range se.Attr {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}

func decodeSchema(dec *xml.Decoder, se xml.StartElement) (*schema.Schema, error) {
	name := attrOf(se, "name")
	var attrs []schema.Attribute
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "attribute" {
				return nil, fmt.Errorf("metadata: xml: unexpected <%s> in <schema>", t.Name.Local)
			}
			k, err := schema.ParseKind(attrOf(t, "type"))
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, schema.Attribute{Name: attrOf(t, "name"), Kind: k})
			if err := dec.Skip(); err != nil {
				return nil, err
			}
		case xml.EndElement:
			return schema.New(name, attrs)
		}
	}
}

func decodeStorage(dec *xml.Decoder, se xml.StartElement) (*Storage, error) {
	st := &Storage{
		DatasetName: attrOf(se, "dataset"),
		SchemaName:  attrOf(se, "schema"),
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "dir" {
				return nil, fmt.Errorf("metadata: xml: unexpected <%s> in <storage>", t.Name.Local)
			}
			var idx int
			if _, err := fmt.Sscanf(attrOf(t, "index"), "%d", &idx); err != nil {
				return nil, fmt.Errorf("metadata: xml: bad dir index %q", attrOf(t, "index"))
			}
			node := attrOf(t, "node")
			entry := DirEntry{Index: idx, Node: node, Path: attrOf(t, "path")}
			if list := attrOf(t, "nodes"); list != "" {
				for _, n := range strings.Split(list, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						return nil, fmt.Errorf("metadata: xml: <dir> has an empty node in its nodes list")
					}
					entry.Nodes = append(entry.Nodes, n)
				}
				entry.Node = entry.Nodes[0]
				if len(entry.Nodes) == 1 {
					entry.Nodes = nil
				}
				if node != "" && node != entry.Node {
					return nil, fmt.Errorf("metadata: xml: <dir> node %q is not the first of nodes %q", node, list)
				}
			} else if node == "" {
				return nil, fmt.Errorf("metadata: xml: <dir> without node")
			}
			st.Dirs = append(st.Dirs, entry)
			if err := dec.Skip(); err != nil {
				return nil, err
			}
		case xml.EndElement:
			if st.DatasetName == "" || st.SchemaName == "" {
				return nil, fmt.Errorf("metadata: xml: <storage> needs dataset and schema attributes")
			}
			if len(st.Dirs) == 0 {
				return nil, fmt.Errorf("metadata: xml: <storage> has no <dir> entries")
			}
			// Enforce contiguous 0..n-1 indices, as the text form does.
			for want := range st.Dirs {
				found := -1
				for i := range st.Dirs {
					if st.Dirs[i].Index == want {
						found = i
						break
					}
				}
				if found < 0 {
					return nil, fmt.Errorf("metadata: xml: DIR indices must be contiguous from 0; missing %d", want)
				}
				st.Dirs[want], st.Dirs[found] = st.Dirs[found], st.Dirs[want]
			}
			return st, nil
		}
	}
}

func xmlExpr(se xml.StartElement, name, dflt string) (Expr, error) {
	s := attrOf(se, name)
	if s == "" {
		if dflt == "" {
			return nil, fmt.Errorf("metadata: xml: <%s> missing %s attribute", se.Name.Local, name)
		}
		s = dflt
	}
	e, err := ParseExpr(s)
	if err != nil {
		return nil, fmt.Errorf("metadata: xml: %s=%q: %w", name, s, err)
	}
	return e, nil
}

func decodeDataset(dec *xml.Decoder, se xml.StartElement) (*DatasetNode, error) {
	n := &DatasetNode{Name: attrOf(se, "name")}
	if bo := strings.ToUpper(attrOf(se, "byteorder")); bo != "" {
		if bo != "BIG" && bo != "LITTLE" {
			return nil, fmt.Errorf("metadata: xml: byteorder must be BIG or LITTLE, got %q", bo)
		}
		n.ByteOrder = bo
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "datatype":
				n.TypeName = attrOf(t, "schema")
				extras, err := decodeTypeAttrs(dec)
				if err != nil {
					return nil, err
				}
				n.ExtraAttrs = extras
			case "dataindex":
				n.IndexAttrs = strings.Fields(attrOf(t, "attrs"))
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			case "dataspace":
				items, err := decodeSpaceItems(dec)
				if err != nil {
					return nil, err
				}
				n.Space = &Dataspace{Items: items}
			case "chunked":
				n.Chunked = strings.Fields(attrOf(t, "attrs"))
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			case "dataset":
				c, err := decodeDataset(dec, t)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, c)
			case "data":
				fcs, err := decodeFiles(dec)
				if err != nil {
					return nil, err
				}
				n.Files = append(n.Files, fcs...)
			case "indexfile":
				fcs, err := decodeFiles(dec)
				if err != nil {
					return nil, err
				}
				n.IndexFiles = append(n.IndexFiles, fcs...)
			default:
				return nil, fmt.Errorf("metadata: xml: unexpected <%s> in <dataset>", t.Name.Local)
			}
		case xml.EndElement:
			return n, nil
		}
	}
}

func decodeTypeAttrs(dec *xml.Decoder) ([]schema.Attribute, error) {
	var out []schema.Attribute
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "attribute" {
				return nil, fmt.Errorf("metadata: xml: unexpected <%s> in <datatype>", t.Name.Local)
			}
			k, err := schema.ParseKind(attrOf(t, "type"))
			if err != nil {
				return nil, err
			}
			out = append(out, schema.Attribute{Name: attrOf(t, "name"), Kind: k})
			if err := dec.Skip(); err != nil {
				return nil, err
			}
		case xml.EndElement:
			return out, nil
		}
	}
}

func decodeSpaceItems(dec *xml.Decoder) ([]SpaceItem, error) {
	var out []SpaceItem
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "attr":
				name := attrOf(t, "name")
				if name == "" {
					return nil, fmt.Errorf("metadata: xml: <attr> without name")
				}
				out = append(out, AttrRef{Name: name})
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			case "loop":
				lo, err := xmlExpr(t, "lo", "")
				if err != nil {
					return nil, err
				}
				hi, err := xmlExpr(t, "hi", "")
				if err != nil {
					return nil, err
				}
				step, err := xmlExpr(t, "step", "1")
				if err != nil {
					return nil, err
				}
				body, err := decodeSpaceItems(dec)
				if err != nil {
					return nil, err
				}
				v := attrOf(t, "var")
				if v == "" {
					return nil, fmt.Errorf("metadata: xml: <loop> without var")
				}
				out = append(out, &Loop{Var: v, Lo: lo, Hi: hi, Step: step, Body: body})
			default:
				return nil, fmt.Errorf("metadata: xml: unexpected <%s> in <dataspace>", t.Name.Local)
			}
		case xml.EndElement:
			return out, nil
		}
	}
}

func decodeFiles(dec *xml.Decoder) ([]FileClause, error) {
	var out []FileClause
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "file" {
				return nil, fmt.Errorf("metadata: xml: unexpected <%s> in file block", t.Name.Local)
			}
			fc := FileClause{}
			dir, err := xmlExpr(t, "dir", "")
			if err != nil {
				return nil, err
			}
			fc.Dir = dir
			name, err := parseNameTemplate(attrOf(t, "name"))
			if err != nil {
				return nil, err
			}
			fc.Name = name
			binds, err := decodeBinds(dec)
			if err != nil {
				return nil, err
			}
			fc.Bindings = binds
			out = append(out, fc)
		case xml.EndElement:
			return out, nil
		}
	}
}

func decodeBinds(dec *xml.Decoder) ([]Binding, error) {
	var out []Binding
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "bind" {
				return nil, fmt.Errorf("metadata: xml: unexpected <%s> in <file>", t.Name.Local)
			}
			lo, err := xmlExpr(t, "lo", "")
			if err != nil {
				return nil, err
			}
			hi, err := xmlExpr(t, "hi", "")
			if err != nil {
				return nil, err
			}
			step, err := xmlExpr(t, "step", "1")
			if err != nil {
				return nil, err
			}
			v := attrOf(t, "var")
			if v == "" {
				return nil, fmt.Errorf("metadata: xml: <bind> without var")
			}
			out = append(out, Binding{Var: v, Lo: lo, Hi: hi, Step: step})
			if err := dec.Skip(); err != nil {
				return nil, err
			}
		case xml.EndElement:
			return out, nil
		}
	}
}

// parseNameTemplate parses a file-name template ("DATA$REL", "f.$I")
// into name parts.
func parseNameTemplate(s string) ([]NamePart, error) {
	if s == "" {
		return nil, fmt.Errorf("metadata: xml: <file> without name")
	}
	var out []NamePart
	for i := 0; i < len(s); {
		if s[i] == '$' {
			j := i + 1
			for j < len(s) && isIdentPart(s[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("metadata: xml: dangling $ in name %q", s)
			}
			out = append(out, NamePart{Var: s[i+1 : j]})
			i = j
			continue
		}
		j := i
		for j < len(s) && s[j] != '$' {
			j++
		}
		out = append(out, NamePart{Lit: s[i:j]})
		i = j
	}
	return out, nil
}
