package metadata

// iparsDescriptor is the paper's Figure 4 descriptor, transcribed in the
// concrete syntax of this implementation. It is shared by tests across
// this package and referenced (via Parse) from internal/afc's worked-
// example test.
const iparsDescriptor = `
// Component I: Dataset Schema Description
[IPARS]               // {* Dataset schema name *}
REL = short int       // {* Data type definition *}
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

// Component II: Dataset Storage Description
[IparsData]           // {* Dataset name *}
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

// Component III: Dataset Layout Description
Dataset "IparsData" {          // {* Name for Dataset *}
  DATATYPE { IPARS }           // {* Schema for Dataset *}
  DATAINDEX { REL TIME }
  DATA { Dataset ipars1 Dataset ipars2 }
  Dataset "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 {
        X Y Z
      }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  } // end of DATASET "ipars1"
  Dataset "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 {
          SOIL SGAS
        }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  } // {* end of DATASET "ipars2" *}
}
`

// titanDescriptor describes a chunked satellite dataset with an external
// R-tree index file, exercising the CHUNKED/INDEXFILE leaf form.
const titanDescriptor = `
[TITAN]
X = int
Y = int
Z = int
S1 = float
S2 = float
S3 = float
S4 = float
S5 = float

[TitanData]
DatasetDescription = TITAN
DIR[0] = osu0/titan

Dataset "TitanData" {
  DATATYPE { TITAN }
  DATAINDEX { X Y Z }
  Dataset "chunks" {
    CHUNKED { X Y Z S1 S2 S3 S4 S5 }
    DATA { DIR[0]/chunks.dat PART = 0:0:1 }
    INDEXFILE { DIR[0]/chunks.idx PART = 0:0:1 }
  }
}
`
