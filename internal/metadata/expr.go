package metadata

import (
	"fmt"
	"strings"
)

// Expr is an integer bound expression from the description language,
// e.g. the loop bound ($DIRID*100+1) of the paper's Figure 4. Variables
// refer to file-clause bindings or enclosing loop variables and are
// resolved against an Env at evaluation time.
type Expr interface {
	// Eval evaluates the expression under env.
	Eval(env Env) (int64, error)
	// Vars appends the free variables of the expression to dst.
	Vars(dst []string) []string
	// String renders description-language syntax that re-parses to an
	// equivalent expression.
	String() string
}

// Env maps variable names to integer values during expression
// evaluation.
type Env map[string]int64

// clone returns a copy of env with extra room.
func (e Env) clone() Env {
	out := make(Env, len(e)+2)
	for k, v := range e {
		out[k] = v
	}
	return out
}

// NumberExpr is an integer literal.
type NumberExpr struct{ Value int64 }

// Eval implements Expr.
func (n NumberExpr) Eval(Env) (int64, error) { return n.Value, nil }

// Vars implements Expr.
func (n NumberExpr) Vars(dst []string) []string { return dst }

func (n NumberExpr) String() string { return fmt.Sprintf("%d", n.Value) }

// VarExpr references a binding or loop variable ($NAME or bare NAME).
type VarExpr struct{ Name string }

// Eval implements Expr.
func (v VarExpr) Eval(env Env) (int64, error) {
	if val, ok := env[v.Name]; ok {
		return val, nil
	}
	return 0, fmt.Errorf("metadata: unbound variable $%s", v.Name)
}

// Vars implements Expr.
func (v VarExpr) Vars(dst []string) []string { return append(dst, v.Name) }

func (v VarExpr) String() string { return "$" + v.Name }

// BinExpr is a binary arithmetic operation: + - * / %.
type BinExpr struct {
	Op   byte
	L, R Expr
}

// Eval implements Expr.
func (b BinExpr) Eval(env Env) (int64, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("metadata: division by zero in bound expression")
		}
		return l / r, nil
	case '%':
		if r == 0 {
			return 0, fmt.Errorf("metadata: modulo by zero in bound expression")
		}
		return l % r, nil
	}
	return 0, fmt.Errorf("metadata: unknown operator %q", string(b.Op))
}

// Vars implements Expr.
func (b BinExpr) Vars(dst []string) []string { return b.R.Vars(b.L.Vars(dst)) }

func (b BinExpr) String() string {
	return fmt.Sprintf("(%s%c%s)", b.L, b.Op, b.R)
}

// NegExpr is unary minus.
type NegExpr struct{ X Expr }

// Eval implements Expr.
func (n NegExpr) Eval(env Env) (int64, error) {
	v, err := n.X.Eval(env)
	return -v, err
}

// Vars implements Expr.
func (n NegExpr) Vars(dst []string) []string { return n.X.Vars(dst) }

func (n NegExpr) String() string { return fmt.Sprintf("(-%s)", n.X) }

// ConstExpr folds e to a NumberExpr when it has no free variables.
func ConstExpr(e Expr) Expr {
	if len(e.Vars(nil)) == 0 {
		if v, err := e.Eval(nil); err == nil {
			return NumberExpr{v}
		}
	}
	return e
}

// ParseExpr parses a stand-alone bound expression (used by tests and by
// generated-code templates).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src, 1)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.peek().isPunct("") && p.peek().Kind != tokEOF {
		return nil, fmt.Errorf("metadata: trailing input after expression: %s", p.peek())
	}
	return e, nil
}

// exprVarsSorted returns the distinct free variables of e, sorted.
func exprVarsSorted(exprs ...Expr) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range exprs {
		for _, v := range e.Vars(nil) {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	// insertion sort; lists are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && strings.Compare(out[j], out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
