package metadata

import (
	"fmt"
	"strings"

	"datavirt/internal/schema"
)

// Pos locates a construct in the descriptor source (1-based line and
// column). The zero Pos means "position unknown" — descriptors built
// from the XML or BinX embeddings, or constructed programmatically,
// carry no positions. The pretty-printer ignores positions, so the
// print/re-parse fixpoint is unaffected by them.
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position was recorded.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Descriptor is a complete parsed meta-data descriptor: the three
// components of the description language.
type Descriptor struct {
	// Schemas holds the Component-I schema sections, in source order.
	Schemas []*schema.Schema
	// Storage is the Component-II storage description.
	Storage *Storage
	// Layout is the root DATASET block of Component III.
	Layout *DatasetNode
}

// Schema returns the named schema section, or nil.
func (d *Descriptor) Schema(name string) *schema.Schema {
	for _, s := range d.Schemas {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// TableSchema returns the schema the storage description binds the
// virtual table to (the DatasetDescription reference).
func (d *Descriptor) TableSchema() *schema.Schema {
	if d.Storage == nil {
		return nil
	}
	return d.Schema(d.Storage.SchemaName)
}

// Storage is Component II: the dataset name, the schema it realizes, and
// the ordered directory table DIR[0..n-1], each entry naming the cluster
// node holding it and the path on that node.
type Storage struct {
	DatasetName string // bracket header, e.g. [IparsData]
	SchemaName  string // DatasetDescription = IPARS
	Dirs        []DirEntry

	// Pos is the bracket header's source position (zero when unknown).
	Pos Pos
}

// DirEntry is one DIR[i] = node/path line, or its replicated form
// DIR[i] = NODES n1, n2, n3/path.
type DirEntry struct {
	Index int
	Node  string // first path component: the cluster node name
	Path  string // remainder: directory on that node

	// Nodes, when it has more than one entry, is the directory's full
	// replica set, primary first (Node == Nodes[0]): every named node
	// holds a copy of the directory's files under the primary's node
	// path, so a query leg for this directory may be served by any of
	// them. Nil or a single entry means the classic single-node form.
	Nodes []string

	// Pos is the DIR line's source position (zero when unknown).
	Pos Pos
}

// ReplicaNodes returns the directory's full replica set, primary
// first. Entries without a NODES list yield just the primary node.
func (e DirEntry) ReplicaNodes() []string {
	if len(e.Nodes) > 0 {
		return e.Nodes
	}
	return []string{e.Node}
}

// Raw renders the entry's right-hand side.
func (e DirEntry) Raw() string {
	if len(e.Nodes) > 1 {
		s := "NODES " + strings.Join(e.Nodes, ", ")
		if e.Path == "" {
			return s
		}
		return s + "/" + e.Path
	}
	if e.Path == "" {
		return e.Node
	}
	return e.Node + "/" + e.Path
}

// DatasetNode is one DATASET block of Component III. A node is either a
// non-leaf (Children non-empty) or a leaf holding actual files. A leaf
// has exactly one of:
//
//   - Space: a regular nested-loop DATASPACE layout, or
//   - Chunked: a variable-length chunked layout whose chunk directory
//     (offset, row count, bounding box) lives in external INDEXFILEs.
type DatasetNode struct {
	Name string

	// TypeName references a Component-I schema (DATATYPE { IPARS }).
	// Empty on nodes that inherit the parent's type.
	TypeName string
	// ExtraAttrs are additional attributes declared inline in DATATYPE
	// that are not part of the referenced schema.
	ExtraAttrs []schema.Attribute

	// IndexAttrs lists the attributes usable for indexed subsetting
	// (DATAINDEX { REL TIME }).
	IndexAttrs []string

	// ByteOrder is "", "LITTLE" (the default) or "BIG": the numeric
	// encoding of this dataset's files (BYTEORDER { BIG }). Inherited by
	// children that leave it empty.
	ByteOrder string

	// Children holds nested datasets (non-leaf nodes).
	Children []*DatasetNode

	// Space is the DATASPACE loop nest (regular leaf).
	Space *Dataspace
	// Chunked is the per-record attribute order of a chunked leaf.
	Chunked []string

	// Files lists the DATA file clauses of a leaf.
	Files []FileClause
	// IndexFiles lists INDEXFILE clauses pairing index files with data
	// files of a chunked leaf.
	IndexFiles []FileClause

	// Pos is the Dataset keyword's source position (zero when unknown).
	Pos Pos
}

// IsLeaf reports whether the node holds files rather than children.
func (n *DatasetNode) IsLeaf() bool { return len(n.Children) == 0 }

// Dataspace is the body of a DATASPACE block: an ordered list of items.
type Dataspace struct {
	Items []SpaceItem
}

// SpaceItem is an element of a dataspace body: either a Loop or an
// AttrRef.
type SpaceItem interface {
	spaceItem()
	printTo(b *strings.Builder, indent string)
}

// Loop is LOOP VAR lo:hi:step { body }. Bounds are inclusive; step must
// evaluate to a positive integer.
type Loop struct {
	Var          string
	Lo, Hi, Step Expr
	Body         []SpaceItem

	// Pos is the LOOP keyword's source position (zero when unknown).
	Pos Pos
}

func (*Loop) spaceItem() {}

func (l *Loop) printTo(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sLOOP %s %s:%s:%s {\n", indent, l.Var, l.Lo, l.Hi, l.Step)
	for _, it := range l.Body {
		it.printTo(b, indent+"  ")
	}
	fmt.Fprintf(b, "%s}\n", indent)
}

// AttrRef names an attribute stored at this position of the loop body.
type AttrRef struct {
	Name string

	// Pos is the reference's source position (zero when unknown).
	Pos Pos
}

func (AttrRef) spaceItem() {}

func (a AttrRef) printTo(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%s%s\n", indent, a.Name)
}

// FileClause is one file template of a DATA or INDEXFILE block, e.g.
//
//	DIR[$DIRID]/DATA$REL  REL = 0:3:1  DIRID = 0:3:1
//
// Dir selects the storage directory (index into Storage.Dirs); Name is
// the file name template; Bindings give the ranges of the template's
// free variables. Expanding the bindings enumerates concrete files, each
// carrying its variable assignment as implicit attributes.
type FileClause struct {
	Dir      Expr
	Name     []NamePart
	Bindings []Binding

	// Pos is the DIR keyword's source position (zero when unknown).
	Pos Pos
}

// NamePart is a literal or variable piece of a file-name template.
type NamePart struct {
	Lit string // literal text, when Var is empty
	Var string // variable reference, when non-empty
}

// Binding is VAR = lo:hi:step.
type Binding struct {
	Var          string
	Lo, Hi, Step Expr

	// Pos is the variable's source position (zero when unknown).
	Pos Pos
}

// Vars returns the distinct free variables of the clause's templates, in
// sorted order.
func (f *FileClause) Vars() []string {
	seen := map[string]bool{}
	var exprs []Expr
	exprs = append(exprs, f.Dir)
	for _, p := range f.Name {
		if p.Var != "" {
			exprs = append(exprs, VarExpr{p.Var})
		}
	}
	vars := exprVarsSorted(exprs...)
	for _, v := range vars {
		seen[v] = true
	}
	return vars
}

// NameString renders the file-name template.
func (f *FileClause) NameString() string {
	var b strings.Builder
	for _, p := range f.Name {
		if p.Var != "" {
			b.WriteByte('$')
			b.WriteString(p.Var)
		} else {
			b.WriteString(p.Lit)
		}
	}
	return b.String()
}

// String renders the clause in descriptor syntax.
func (f *FileClause) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DIR[%s]/%s", f.Dir, f.NameString())
	for _, bind := range f.Bindings {
		fmt.Fprintf(&b, " %s = %s:%s:%s", bind.Var, bind.Lo, bind.Hi, bind.Step)
	}
	return b.String()
}

// String renders the whole descriptor in description-language syntax.
// The output re-parses to an equivalent descriptor (tested).
func (d *Descriptor) String() string {
	var b strings.Builder
	for _, s := range d.Schemas {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	if d.Storage != nil {
		fmt.Fprintf(&b, "[%s]\n", d.Storage.DatasetName)
		fmt.Fprintf(&b, "DatasetDescription = %s\n", d.Storage.SchemaName)
		for _, e := range d.Storage.Dirs {
			fmt.Fprintf(&b, "DIR[%d] = %s\n", e.Index, e.Raw())
		}
		b.WriteByte('\n')
	}
	if d.Layout != nil {
		d.Layout.printTo(&b, "")
	}
	return b.String()
}

func (n *DatasetNode) printTo(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sDataset %q {\n", indent, n.Name)
	in := indent + "  "
	if n.TypeName != "" || len(n.ExtraAttrs) > 0 {
		fmt.Fprintf(b, "%sDATATYPE { %s", in, n.TypeName)
		for _, a := range n.ExtraAttrs {
			fmt.Fprintf(b, " %s = %s", a.Name, a.Kind)
		}
		fmt.Fprintf(b, " }\n")
	}
	if len(n.IndexAttrs) > 0 {
		fmt.Fprintf(b, "%sDATAINDEX { %s }\n", in, strings.Join(n.IndexAttrs, " "))
	}
	if n.ByteOrder != "" {
		fmt.Fprintf(b, "%sBYTEORDER { %s }\n", in, n.ByteOrder)
	}
	if n.Space != nil {
		fmt.Fprintf(b, "%sDATASPACE {\n", in)
		for _, it := range n.Space.Items {
			it.printTo(b, in+"  ")
		}
		fmt.Fprintf(b, "%s}\n", in)
	}
	if len(n.Chunked) > 0 {
		fmt.Fprintf(b, "%sCHUNKED { %s }\n", in, strings.Join(n.Chunked, " "))
	}
	if len(n.Children) > 0 {
		fmt.Fprintf(b, "%sDATA {\n", in)
		for _, c := range n.Children {
			c.printTo(b, in+"  ")
		}
		fmt.Fprintf(b, "%s}\n", in)
	}
	if len(n.Files) > 0 {
		fmt.Fprintf(b, "%sDATA {", in)
		for _, f := range n.Files {
			fmt.Fprintf(b, " %s", f.String())
		}
		fmt.Fprintf(b, " }\n")
	}
	if len(n.IndexFiles) > 0 {
		fmt.Fprintf(b, "%sINDEXFILE {", in)
		for _, f := range n.IndexFiles {
			fmt.Fprintf(b, " %s", f.String())
		}
		fmt.Fprintf(b, " }\n")
	}
	fmt.Fprintf(b, "%s}\n", indent)
}

// Leaves appends all leaf datasets under n (including n itself if leaf)
// to dst in document order.
func (n *DatasetNode) Leaves(dst []*DatasetNode) []*DatasetNode {
	if n.IsLeaf() {
		return append(dst, n)
	}
	for _, c := range n.Children {
		dst = c.Leaves(dst)
	}
	return dst
}
