package metadata

import (
	"reflect"
	"strings"
	"testing"
)

// replicaDescriptor maps each storage directory to a 2-way replica
// set in the chained layout the cluster tests use: every node is the
// primary of one directory and the standby of another.
const replicaDescriptor = `
[IPARS]
REL = short int
TIME = int
SOIL = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = NODES osu0, osu1/ipars
DIR[1] = NODES osu1, osu2/ipars
DIR[2] = NODES osu2, osu0/ipars

Dataset "IparsData" {
  DATATYPE { IPARS }
  DATASPACE {
    LOOP TIME 1:10:1 { SOIL }
  }
  DATA { DIR[$DIRID]/DATA$REL REL = 0:1:1 DIRID = 0:2:1 }
}
`

func TestParseReplicaDirs(t *testing.T) {
	d, err := Parse(replicaDescriptor)
	if err != nil {
		t.Fatal(err)
	}
	dirs := d.Storage.Dirs
	if len(dirs) != 3 {
		t.Fatalf("dirs = %d, want 3", len(dirs))
	}
	wantSets := [][]string{
		{"osu0", "osu1"},
		{"osu1", "osu2"},
		{"osu2", "osu0"},
	}
	for i, e := range dirs {
		if !reflect.DeepEqual(e.Nodes, wantSets[i]) {
			t.Errorf("DIR[%d].Nodes = %v, want %v", i, e.Nodes, wantSets[i])
		}
		if e.Node != wantSets[i][0] {
			t.Errorf("DIR[%d].Node = %q, want primary %q", i, e.Node, wantSets[i][0])
		}
		if e.Path != "ipars" {
			t.Errorf("DIR[%d].Path = %q", i, e.Path)
		}
		if !reflect.DeepEqual(e.ReplicaNodes(), wantSets[i]) {
			t.Errorf("DIR[%d].ReplicaNodes() = %v", i, e.ReplicaNodes())
		}
	}
}

func TestReplicaNodesSingleForm(t *testing.T) {
	d, err := Parse(iparsDescriptor)
	if err != nil {
		t.Fatal(err)
	}
	e := d.Storage.Dirs[0]
	if e.Nodes != nil {
		t.Errorf("single-node DIR carries Nodes %v", e.Nodes)
	}
	if got := e.ReplicaNodes(); len(got) != 1 || got[0] != e.Node {
		t.Errorf("ReplicaNodes() = %v, want [%s]", got, e.Node)
	}
}

func TestReplicaStringRoundTrip(t *testing.T) {
	d1, err := Parse(replicaDescriptor)
	if err != nil {
		t.Fatal(err)
	}
	printed := d1.String()
	if !strings.Contains(printed, "DIR[0] = NODES osu0, osu1/ipars") {
		t.Fatalf("printer lost the replica form:\n%s", printed)
	}
	d2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, printed)
	}
	if d2.String() != printed {
		t.Fatalf("print is not a fixpoint:\n%s\nvs\n%s", printed, d2.String())
	}
	if !reflect.DeepEqual(d2.Storage.Dirs[1].Nodes, []string{"osu1", "osu2"}) {
		t.Errorf("re-parsed DIR[1].Nodes = %v", d2.Storage.Dirs[1].Nodes)
	}
}

func TestReplicaXMLRoundTrip(t *testing.T) {
	d1, err := Parse(replicaDescriptor)
	if err != nil {
		t.Fatal(err)
	}
	xmlSrc, err := ToXML(d1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xmlSrc, `nodes="osu0,osu1"`) {
		t.Fatalf("XML lost the replica set:\n%s", xmlSrc)
	}
	d2, err := ParseXML(xmlSrc)
	if err != nil {
		t.Fatalf("ParseXML: %v\n%s", err, xmlSrc)
	}
	for i := range d1.Storage.Dirs {
		if !reflect.DeepEqual(d1.Storage.Dirs[i].Nodes, d2.Storage.Dirs[i].Nodes) {
			t.Errorf("DIR[%d] nodes changed across XML: %v vs %v",
				i, d1.Storage.Dirs[i].Nodes, d2.Storage.Dirs[i].Nodes)
		}
		if d1.Storage.Dirs[i].Node != d2.Storage.Dirs[i].Node {
			t.Errorf("DIR[%d] primary changed across XML", i)
		}
	}
}

func TestReplicaParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty replica name",
			strings.Replace(replicaDescriptor, "NODES osu0, osu1/ipars", "NODES osu0, /ipars", 1),
			"empty node"},
		{"duplicate replica",
			strings.Replace(replicaDescriptor, "NODES osu0, osu1/ipars", "NODES osu0, osu0/ipars", 1),
			"twice in its replica set"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestNodesNamedNode keeps the degenerate spellings working: a single
// node literally named NODES, and a one-element NODES list collapsing
// to the single-node form.
func TestNodesNamedNode(t *testing.T) {
	src := strings.Replace(iparsDescriptor, "DIR[0] = osu0/ipars", "DIR[0] = NODES/special", 1)
	d, err := ParseUnvalidated(src)
	if err != nil {
		t.Fatal(err)
	}
	if e := d.Storage.Dirs[0]; e.Node != "NODES" || e.Path != "special" || e.Nodes != nil {
		t.Errorf("DIR[0] = %+v", e)
	}

	src = strings.Replace(iparsDescriptor, "DIR[0] = osu0/ipars", "DIR[0] = NODES osu0/ipars", 1)
	d, err = Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if e := d.Storage.Dirs[0]; e.Node != "osu0" || e.Path != "ipars" || e.Nodes != nil {
		t.Errorf("one-element NODES list: DIR[0] = %+v", e)
	}
}
