package metadata

import (
	"encoding/xml"
	"fmt"
	"strings"

	"datavirt/internal/schema"
)

// BinX import. The paper positions BinX and BFD as single-file binary
// descriptions and argues that "our basic approach can be used for
// supporting virtualization on top of ... individual files that use
// descriptions like BinX or BFD" (§3.1). FromBinX realizes that claim:
// it converts a BinX-style document describing one flat binary file
// into a full three-component descriptor, whose virtual table can then
// be compiled and queried like any native one.
//
// The supported subset covers BinX's core vocabulary — a byte order, a
// source file, nested fixed-size arrayFixed dimensions, and a struct of
// primitive-typed fields:
//
//	<binx byteOrder="littleEndian">
//	  <dataset src="data/file0.dat" name="MyData">
//	    <arrayFixed>
//	      <dim name="TIME" count="500"/>
//	      <dim name="GRID" count="100"/>
//	      <struct>
//	        <float-32 varName="SOIL"/>
//	        <float-32 varName="SGAS"/>
//	      </struct>
//	    </arrayFixed>
//	  </dataset>
//	</binx>
//
// Dimension names become loop variables (and integer attributes of the
// virtual table, so they can be selected and filtered on); field names
// become payload attributes.

type binxDoc struct {
	XMLName   xml.Name    `xml:"binx"`
	ByteOrder string      `xml:"byteOrder,attr"`
	Dataset   binxDataset `xml:"dataset"`
}

type binxDataset struct {
	Src   string     `xml:"src,attr"`
	Name  string     `xml:"name,attr"`
	Array *binxArray `xml:"arrayFixed"`
	// A bare struct (no array) is a single record.
	Struct *binxStruct `xml:"struct"`
}

type binxArray struct {
	Dims   []binxDim   `xml:"dim"`
	Struct *binxStruct `xml:"struct"`
	// A single primitive element instead of a struct.
	Fields []binxField `xml:",any"`
}

type binxDim struct {
	Name  string `xml:"name,attr"`
	Count int64  `xml:"count,attr"`
}

type binxStruct struct {
	Fields []binxField `xml:",any"`
}

type binxField struct {
	XMLName xml.Name
	VarName string `xml:"varName,attr"`
}

// binxKind maps BinX primitive element names to schema kinds.
func binxKind(local string) (schema.Kind, error) {
	switch strings.ToLower(local) {
	case "byte-8", "byte8", "char-8", "character-8":
		return schema.Char, nil
	case "integer-16", "int-16", "short-16":
		return schema.Short, nil
	case "integer-32", "int-32":
		return schema.Int, nil
	case "integer-64", "int-64", "long-64":
		return schema.Long, nil
	case "float-32", "ieee-float-32", "float32":
		return schema.Float, nil
	case "double-64", "ieee-double-64", "float-64":
		return schema.Double, nil
	}
	return schema.Invalid, fmt.Errorf("metadata: binx: unsupported primitive <%s>", local)
}

// FromBinX converts a BinX document into a validated descriptor. The
// file's location is interpreted as node/path/name relative to a data
// root, like any storage entry (a bare file name is served by a node
// called "localhost").
func FromBinX(src string) (*Descriptor, error) {
	var doc binxDoc
	if err := xml.Unmarshal([]byte(src), &doc); err != nil {
		return nil, fmt.Errorf("metadata: binx: %w", err)
	}
	if doc.Dataset.Src == "" {
		return nil, fmt.Errorf("metadata: binx: <dataset> missing src attribute")
	}
	name := doc.Dataset.Name
	if name == "" {
		name = "BinXData"
	}

	// Fields: from the array's struct, the array's single element, or a
	// bare struct.
	var fields []binxField
	var dims []binxDim
	switch {
	case doc.Dataset.Array != nil:
		dims = doc.Dataset.Array.Dims
		if doc.Dataset.Array.Struct != nil {
			fields = doc.Dataset.Array.Struct.Fields
		} else {
			fields = doc.Dataset.Array.Fields
		}
	case doc.Dataset.Struct != nil:
		fields = doc.Dataset.Struct.Fields
	default:
		return nil, fmt.Errorf("metadata: binx: dataset has neither <arrayFixed> nor <struct>")
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("metadata: binx: no primitive fields found")
	}
	for _, d := range dims {
		if d.Name == "" || d.Count < 1 {
			return nil, fmt.Errorf("metadata: binx: <dim> needs a name and a positive count")
		}
	}

	// Virtual table schema: dimension variables as ints, then fields.
	var attrs []schema.Attribute
	for _, d := range dims {
		attrs = append(attrs, schema.Attribute{Name: d.Name, Kind: schema.Int})
	}
	for i, f := range fields {
		k, err := binxKind(f.XMLName.Local)
		if err != nil {
			return nil, err
		}
		fname := f.VarName
		if fname == "" {
			fname = fmt.Sprintf("FIELD%d", i)
		}
		attrs = append(attrs, schema.Attribute{Name: fname, Kind: k})
	}
	sch, err := schema.New(strings.ToUpper(name), attrs)
	if err != nil {
		return nil, err
	}

	// Storage: split src into node / dir path / file name.
	parts := strings.Split(strings.Trim(doc.Dataset.Src, "/"), "/")
	node, dirPath, fileName := "localhost", "", parts[len(parts)-1]
	if len(parts) >= 2 {
		node = parts[0]
		dirPath = strings.Join(parts[1:len(parts)-1], "/")
	}
	st := &Storage{
		DatasetName: name,
		SchemaName:  sch.Name(),
		Dirs:        []DirEntry{{Index: 0, Node: node, Path: dirPath}},
	}

	// Layout: one leaf; dims become nested loops 0..count-1 around the
	// struct's fields.
	var items []SpaceItem
	for i, f := range fields {
		fname := f.VarName
		if fname == "" {
			fname = fmt.Sprintf("FIELD%d", i)
		}
		items = append(items, AttrRef{Name: fname})
	}
	for i := len(dims) - 1; i >= 0; i-- {
		items = []SpaceItem{&Loop{
			Var:  dims[i].Name,
			Lo:   NumberExpr{0},
			Hi:   NumberExpr{dims[i].Count - 1},
			Step: NumberExpr{1},
			Body: items,
		}}
	}
	byteOrder := ""
	switch strings.ToLower(doc.ByteOrder) {
	case "", "littleendian":
	case "bigendian":
		byteOrder = "BIG"
	default:
		return nil, fmt.Errorf("metadata: binx: unknown byteOrder %q", doc.ByteOrder)
	}
	var indexAttrs []string
	for _, d := range dims {
		indexAttrs = append(indexAttrs, d.Name)
	}
	root := &DatasetNode{
		Name:       name,
		TypeName:   sch.Name(),
		IndexAttrs: indexAttrs,
		ByteOrder:  byteOrder,
		Space:      &Dataspace{Items: items},
		Files: []FileClause{{
			Dir:  NumberExpr{0},
			Name: []NamePart{{Lit: fileName}},
		}},
	}
	d := &Descriptor{Schemas: []*schema.Schema{sch}, Storage: st, Layout: root}
	if err := Validate(d); err != nil {
		return nil, err
	}
	return d, nil
}
