package metadata

import (
	"testing"
)

// FuzzParse guards the descriptor parser against panics on arbitrary
// input. `go test` runs the seed corpus; `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	f.Add(iparsDescriptor)
	f.Add(titanDescriptor)
	f.Add("")
	f.Add("[S]\nA = int\n")
	f.Add("Dataset \"x\" {")
	f.Add("[S]\nA = int\n[D]\nDatasetDescription = S\nDIR[0] = n/p\nDataset \"x\" { DATATYPE { S } DATASPACE { LOOP I 0:3:1 { A } } DATA { DIR[0]/f } }")
	f.Add("{* unterminated")
	f.Add("Dataset \"a\" { DATA { DIR[0]/f$ } }")
	f.Add("LOOP LOOP LOOP")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(src)
		if err != nil {
			return
		}
		// Successful parses must print and re-parse to a fixpoint.
		printed := d.String()
		d2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\n%s", err, printed)
		}
		if d2.String() != printed {
			t.Fatalf("print is not a fixpoint:\n%s\nvs\n%s", printed, d2.String())
		}
	})
}

// FuzzParseXML guards the XML embedding.
func FuzzParseXML(f *testing.F) {
	if d, err := Parse(iparsDescriptor); err == nil {
		if x, err := ToXML(d); err == nil {
			f.Add(x)
		}
	}
	f.Add("<descriptor></descriptor>")
	f.Add("<binx/>")
	f.Add("<descriptor><schema name='S'><attribute name='A' type='int'/></schema></descriptor>")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseXML(src)
		if err != nil {
			return
		}
		if _, err := ToXML(d); err != nil {
			t.Fatalf("accepted descriptor does not re-encode: %v", err)
		}
	})
}

// FuzzFromBinX guards the BinX importer.
func FuzzFromBinX(f *testing.F) {
	f.Add(binxSample)
	f.Add("<binx><dataset src='f'><struct><float-32 varName='A'/></struct></dataset></binx>")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := FromBinX(src)
		if err != nil {
			return
		}
		// Whatever BinX accepts must be a valid, printable descriptor.
		if _, err := Parse(d.String()); err != nil {
			t.Fatalf("BinX-converted descriptor does not re-parse: %v\n%s", err, d.String())
		}
	})
}
