package metadata

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"datavirt/internal/schema"
)

// Parse parses a complete three-component descriptor. The source holds
// the Component-I schema sections and the Component-II storage section
// (both bracket-headed, line oriented), followed by the Component-III
// layout description (the root "Dataset" block). The result is
// validated; see Validate for the rules enforced.
func Parse(src string) (*Descriptor, error) {
	d, err := ParseUnvalidated(src)
	if err != nil {
		return nil, err
	}
	if err := Validate(d); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseUnvalidated parses the descriptor syntax without running
// Validate. The static checker (internal/metadata/lint) uses it to
// analyze descriptors whose structural rules it wants to diagnose with
// positions instead of failing at the first violation. Everyone else
// should call Parse.
func ParseUnvalidated(src string) (*Descriptor, error) {
	clean := schema.StripComments(src)
	head, tail := splitLayout(clean)

	d := &Descriptor{}
	if err := parseHeadSections(head, d); err != nil {
		return nil, err
	}
	if strings.TrimSpace(tail) == "" {
		return nil, fmt.Errorf("metadata: missing Component III (no Dataset block found)")
	}
	// The tail starts mid-file: keep token positions absolute.
	toks, err := lex(tail, 1+strings.Count(head, "\n"))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.parseDataset()
	if err != nil {
		return nil, err
	}
	if !p.peek().isEOF() {
		return nil, p.errf("unexpected input after root Dataset block: %s", p.peek())
	}
	d.Layout = root
	return d, nil
}

// ParseFile reads and parses the descriptor at path. Both the text form
// and the XML embedding are accepted; XML is detected by a leading
// "<?xml" or "<descriptor" tag.
func ParseFile(path string) (*Descriptor, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("metadata: %v", err)
	}
	src := string(b)
	var d *Descriptor
	switch {
	case IsBinX(src):
		d, err = FromBinX(src)
	case IsXML(src):
		d, err = ParseXML(src)
	default:
		d, err = Parse(src)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// IsXML reports whether the source looks like the XML embedding.
func IsXML(src string) bool {
	s := strings.TrimSpace(src)
	return strings.HasPrefix(s, "<?xml") || strings.HasPrefix(s, "<descriptor")
}

// IsBinX reports whether the source looks like a BinX document.
func IsBinX(src string) bool {
	s := strings.TrimSpace(src)
	if strings.HasPrefix(s, "<?xml") {
		if i := strings.Index(s, "?>"); i >= 0 {
			s = strings.TrimSpace(s[i+2:])
		}
	}
	return strings.HasPrefix(s, "<binx")
}

// splitLayout splits comment-stripped source into the line-oriented head
// (Components I and II) and the token-oriented layout tail (Component
// III), which begins at the first `Dataset "..."` occurrence.
// The scan is byte-wise and ASCII-case-insensitive: lowercasing the
// whole source would desynchronize byte offsets on multi-byte runes.
func splitLayout(src string) (head, tail string) {
	const kw = "dataset"
	for i := 0; i+len(kw) <= len(src); i++ {
		if !strings.EqualFold(src[i:i+len(kw)], kw) {
			continue
		}
		// Must sit on a word boundary and be followed by a quoted name.
		if i > 0 && isIdentPart(src[i-1]) {
			continue
		}
		j := i + len(kw)
		if j < len(src) && isIdentPart(src[j]) {
			continue
		}
		for j < len(src) && (src[j] == ' ' || src[j] == '\t' || src[j] == '\n' || src[j] == '\r') {
			j++
		}
		if j < len(src) && src[j] == '"' {
			return src[:i], src[i:]
		}
	}
	return src, ""
}

// headLine is one non-empty section line plus its 1-based file line.
type headLine struct {
	text string
	line int
}

// parseHeadSections parses the bracket-headed sections before the layout
// block. A section containing a DatasetDescription key is the storage
// description; all others are schema sections.
func parseHeadSections(head string, d *Descriptor) error {
	type section struct {
		name  string
		lines []headLine
		line  int
	}
	var secs []section
	for lineno, raw := range strings.Split(head, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			secs = append(secs, section{name: strings.TrimSpace(line[1 : len(line)-1]), line: lineno + 1})
			continue
		}
		if len(secs) == 0 {
			return fmt.Errorf("metadata: line %d: content before first [section]", lineno+1)
		}
		secs[len(secs)-1].lines = append(secs[len(secs)-1].lines, headLine{text: line, line: lineno + 1})
	}
	for _, sec := range secs {
		if isStorageSection(sec.lines) {
			if d.Storage != nil {
				return fmt.Errorf("metadata: duplicate storage description [%s]", sec.name)
			}
			st, err := parseStorage(sec.name, sec.line, sec.lines)
			if err != nil {
				return err
			}
			d.Storage = st
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "[%s]\n", sec.name)
		for _, l := range sec.lines {
			b.WriteString(l.text)
			b.WriteByte('\n')
		}
		ss, err := schema.ParseSchemas(b.String())
		if err != nil {
			return err
		}
		d.Schemas = append(d.Schemas, ss...)
	}
	return nil
}

func isStorageSection(lines []headLine) bool {
	for _, l := range lines {
		key, _, ok := strings.Cut(l.text, "=")
		if ok && strings.EqualFold(strings.TrimSpace(key), "DatasetDescription") {
			return true
		}
	}
	return false
}

func parseStorage(name string, headerLine int, lines []headLine) (*Storage, error) {
	st := &Storage{DatasetName: name, Pos: Pos{Line: headerLine, Col: 1}}
	seen := map[int]bool{}
	for _, hl := range lines {
		l := hl.text
		key, val, ok := strings.Cut(l, "=")
		if !ok {
			return nil, fmt.Errorf("metadata: storage [%s]: malformed line %q", name, l)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if strings.EqualFold(key, "DatasetDescription") {
			if st.SchemaName != "" {
				return nil, fmt.Errorf("metadata: storage [%s]: duplicate DatasetDescription", name)
			}
			st.SchemaName = val
			continue
		}
		upper := strings.ToUpper(key)
		if strings.HasPrefix(upper, "DIR[") && strings.HasSuffix(upper, "]") {
			idxText := key[4 : len(key)-1]
			idx, err := strconv.Atoi(strings.TrimSpace(idxText))
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("metadata: storage [%s]: bad DIR index %q", name, idxText)
			}
			if seen[idx] {
				return nil, fmt.Errorf("metadata: storage [%s]: duplicate DIR[%d]", name, idx)
			}
			seen[idx] = true
			entry := DirEntry{Index: idx, Pos: Pos{Line: hl.line, Col: 1}}
			if rest, replicated := cutNodesKeyword(val); replicated {
				// Replica form: NODES n1, n2, n3/path. Duplicate or
				// otherwise suspicious replica names are accepted here so
				// the lint checker can report them with positions; only
				// emptiness is a parse error.
				list, path, _ := strings.Cut(rest, "/")
				for _, n := range strings.Split(list, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						return nil, fmt.Errorf("metadata: storage [%s]: DIR[%d] has an empty node in its NODES list", name, idx)
					}
					entry.Nodes = append(entry.Nodes, n)
				}
				entry.Node = entry.Nodes[0]
				entry.Path = strings.TrimSpace(path)
				if len(entry.Nodes) == 1 {
					entry.Nodes = nil // degenerate NODES list: single-node form
				}
			} else {
				node, path, _ := strings.Cut(val, "/")
				if node == "" {
					return nil, fmt.Errorf("metadata: storage [%s]: DIR[%d] has empty node", name, idx)
				}
				entry.Node, entry.Path = node, path
			}
			st.Dirs = append(st.Dirs, entry)
			continue
		}
		return nil, fmt.Errorf("metadata: storage [%s]: unknown key %q", name, key)
	}
	if st.SchemaName == "" {
		return nil, fmt.Errorf("metadata: storage [%s]: missing DatasetDescription", name)
	}
	if len(st.Dirs) == 0 {
		return nil, fmt.Errorf("metadata: storage [%s]: no DIR entries", name)
	}
	// Require the contiguous 0..n-1 index set, in order.
	for want := range st.Dirs {
		found := -1
		for i := range st.Dirs {
			if st.Dirs[i].Index == want {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("metadata: storage [%s]: DIR indices must be contiguous from 0; missing DIR[%d]", name, want)
		}
		st.Dirs[want], st.Dirs[found] = st.Dirs[found], st.Dirs[want]
	}
	return st, nil
}

// cutNodesKeyword detects the replica form of a DIR value: a
// case-insensitive NODES keyword followed by whitespace. It returns
// the remainder (the comma-separated node list and optional /path).
// A value like "NODES/data" is NOT the replica form — it is a single
// node that happens to be named NODES.
func cutNodesKeyword(val string) (string, bool) {
	const kw = "NODES"
	if len(val) <= len(kw) || !strings.EqualFold(val[:len(kw)], kw) {
		return "", false
	}
	if c := val[len(kw)]; c != ' ' && c != '\t' {
		return "", false
	}
	return strings.TrimSpace(val[len(kw):]), true
}

// parser consumes the token stream of Component III.
type parser struct {
	toks []token
	pos  int
}

func (t token) isEOF() bool { return t.Kind == tokEOF }

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.Kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("metadata: line %d: %s", p.peek().Line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(c string) error {
	if !p.peek().isPunct(c) {
		return p.errf("expected %q, got %s", c, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peek().isKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.peek())
	}
	p.next()
	return nil
}

// parseDataset parses Dataset "name" { clauses } and resolves
// child-by-reference DATA clauses.
func (p *parser) parseDataset() (*DatasetNode, error) {
	kwPos := p.peek().pos()
	if err := p.expectKeyword("Dataset"); err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.Kind != tokString {
		return nil, p.errf("expected quoted dataset name, got %s", nameTok)
	}
	n := &DatasetNode{Name: nameTok.Text, Pos: kwPos}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var childRefs []string            // names referenced in DATA { Dataset x ... }
	defs := map[string]*DatasetNode{} // nested Dataset definitions by name
	var defOrder []string
	for !p.peek().isPunct("}") {
		t := p.peek()
		switch {
		case t.isKeyword("DATATYPE"):
			p.next()
			if err := p.parseDatatype(n); err != nil {
				return nil, err
			}
		case t.isKeyword("DATAINDEX"):
			p.next()
			names, err := p.parseIdentBlock()
			if err != nil {
				return nil, err
			}
			n.IndexAttrs = names
		case t.isKeyword("BYTEORDER"):
			p.next()
			names, err := p.parseIdentBlock()
			if err != nil {
				return nil, err
			}
			if len(names) != 1 || (!strings.EqualFold(names[0], "BIG") && !strings.EqualFold(names[0], "LITTLE")) {
				return nil, p.errf("BYTEORDER must be { BIG } or { LITTLE }")
			}
			n.ByteOrder = strings.ToUpper(names[0])
		case t.isKeyword("DATASPACE"):
			p.next()
			if n.Space != nil {
				return nil, p.errf("duplicate DATASPACE in dataset %q", n.Name)
			}
			if err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			items, err := p.parseSpaceItems()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			n.Space = &Dataspace{Items: items}
		case t.isKeyword("CHUNKED"):
			p.next()
			names, err := p.parseIdentBlock()
			if err != nil {
				return nil, err
			}
			n.Chunked = names
		case t.isKeyword("DATA"):
			p.next()
			refs, clauses, inline, err := p.parseDataBlock()
			if err != nil {
				return nil, err
			}
			childRefs = append(childRefs, refs...)
			n.Files = append(n.Files, clauses...)
			for _, c := range inline {
				if _, dup := defs[c.Name]; dup {
					return nil, p.errf("duplicate nested dataset %q", c.Name)
				}
				defs[c.Name] = c
				defOrder = append(defOrder, c.Name)
			}
		case t.isKeyword("INDEXFILE"):
			p.next()
			if err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			for !p.peek().isPunct("}") {
				fc, err := p.parseFileClause()
				if err != nil {
					return nil, err
				}
				n.IndexFiles = append(n.IndexFiles, *fc)
			}
			p.next() // }
		case t.isKeyword("Dataset"):
			c, err := p.parseDataset()
			if err != nil {
				return nil, err
			}
			if _, dup := defs[c.Name]; dup {
				return nil, p.errf("duplicate nested dataset %q", c.Name)
			}
			defs[c.Name] = c
			defOrder = append(defOrder, c.Name)
		default:
			return nil, p.errf("unexpected %s in dataset %q", t, n.Name)
		}
	}
	p.next() // }

	// Resolve children: referenced names must be defined; definitions not
	// referenced are appended in definition order (supporting both the
	// paper's reference style and plain nesting).
	used := map[string]bool{}
	for _, ref := range childRefs {
		c, ok := defs[ref]
		if !ok {
			return nil, fmt.Errorf("metadata: dataset %q references undefined dataset %q", n.Name, ref)
		}
		if used[ref] {
			return nil, fmt.Errorf("metadata: dataset %q references dataset %q twice", n.Name, ref)
		}
		used[ref] = true
		n.Children = append(n.Children, c)
	}
	for _, name := range defOrder {
		if !used[name] {
			n.Children = append(n.Children, defs[name])
		}
	}
	return n, nil
}

// parseDatatype parses DATATYPE { SCHEMA_REF? (NAME = type)* }.
func (p *parser) parseDatatype(n *DatasetNode) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.peek().isPunct("}") {
		t := p.next()
		if t.Kind != tokIdent {
			return p.errf("expected identifier in DATATYPE, got %s", t)
		}
		if p.peek().isPunct("=") {
			p.next()
			kindName := p.next()
			if kindName.Kind != tokIdent {
				return p.errf("expected type name, got %s", kindName)
			}
			text := kindName.Text
			if p.peek().Kind == tokIdent && !p.peekAt(1).isPunct("=") {
				if _, err := schema.ParseKind(text + " " + p.peek().Text); err == nil {
					text += " " + p.next().Text
				}
			}
			k, err := schema.ParseKind(text)
			if err != nil {
				return p.errf("%v", err)
			}
			n.ExtraAttrs = append(n.ExtraAttrs, schema.Attribute{Name: t.Text, Kind: k})
			continue
		}
		if n.TypeName != "" {
			return p.errf("multiple schema references in DATATYPE (%q and %q)", n.TypeName, t.Text)
		}
		n.TypeName = t.Text
	}
	p.next() // }
	return nil
}

// parseIdentBlock parses { IDENT IDENT ... } allowing optional commas.
func (p *parser) parseIdentBlock() ([]string, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var names []string
	for !p.peek().isPunct("}") {
		if p.peek().isPunct(",") {
			p.next()
			continue
		}
		t := p.next()
		if t.Kind != tokIdent {
			return nil, p.errf("expected identifier, got %s", t)
		}
		names = append(names, t.Text)
	}
	p.next() // }
	if len(names) == 0 {
		return nil, p.errf("empty identifier block")
	}
	return names, nil
}

// parseSpaceItems parses the body of a DATASPACE or LOOP until '}'.
func (p *parser) parseSpaceItems() ([]SpaceItem, error) {
	var items []SpaceItem
	for !p.peek().isPunct("}") {
		t := p.peek()
		switch {
		case t.isKeyword("LOOP"):
			loopPos := t.pos()
			p.next()
			v := p.next()
			if v.Kind != tokIdent {
				return nil, p.errf("expected loop variable, got %s", v)
			}
			lo, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			hi, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			step := Expr(NumberExpr{1})
			if p.peek().isPunct(":") {
				p.next()
				step, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			body, err := p.parseSpaceItems()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			items = append(items, &Loop{Var: v.Text, Lo: lo, Hi: hi, Step: step, Body: body, Pos: loopPos})
		case t.Kind == tokIdent:
			p.next()
			items = append(items, AttrRef{Name: t.Text, Pos: t.pos()})
		case t.isEOF():
			return nil, p.errf("unterminated dataspace body")
		default:
			return nil, p.errf("unexpected %s in dataspace", t)
		}
	}
	return items, nil
}

// parseDataBlock parses a DATA block, which may contain dataset
// references (Dataset name), inline dataset definitions (Dataset "name"
// { ... }), or file clauses.
func (p *parser) parseDataBlock() (refs []string, clauses []FileClause, inline []*DatasetNode, err error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, nil, nil, err
	}
	for !p.peek().isPunct("}") {
		t := p.peek()
		switch {
		case t.isKeyword("Dataset"):
			if p.peekAt(1).Kind == tokString {
				c, err := p.parseDataset()
				if err != nil {
					return nil, nil, nil, err
				}
				inline = append(inline, c)
				continue
			}
			p.next()
			name := p.next()
			if name.Kind != tokIdent {
				return nil, nil, nil, p.errf("expected dataset name after Dataset, got %s", name)
			}
			refs = append(refs, name.Text)
		case t.isKeyword("DIR"):
			fc, err := p.parseFileClause()
			if err != nil {
				return nil, nil, nil, err
			}
			clauses = append(clauses, *fc)
		case t.isEOF():
			return nil, nil, nil, p.errf("unterminated DATA block")
		default:
			return nil, nil, nil, p.errf("unexpected %s in DATA block", t)
		}
	}
	p.next() // }
	return refs, clauses, inline, nil
}

// parseFileClause parses DIR[expr]/NAME-template followed by zero or more
// VAR = lo:hi:step bindings.
func (p *parser) parseFileClause() (*FileClause, error) {
	dirPos := p.peek().pos()
	if err := p.expectKeyword("DIR"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	dir, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("/"); err != nil {
		return nil, err
	}
	fc := &FileClause{Dir: dir, Pos: dirPos}
	// Name template: adjacent IDENT / NUMBER / '.' / '$'IDENT tokens.
	first := true
	for {
		t := p.peek()
		if !first && !t.Adjacent {
			break
		}
		switch {
		case t.Kind == tokIdent || t.Kind == tokNumber:
			fc.Name = append(fc.Name, NamePart{Lit: t.Text})
			p.next()
		case t.isPunct("."):
			fc.Name = append(fc.Name, NamePart{Lit: "."})
			p.next()
		case t.isPunct("$"):
			p.next()
			v := p.peek()
			if v.Kind != tokIdent || !v.Adjacent {
				return nil, p.errf("expected variable name after $ in file name")
			}
			p.next()
			fc.Name = append(fc.Name, NamePart{Var: v.Text})
		default:
			if first {
				return nil, p.errf("expected file name after DIR[...]/, got %s", t)
			}
			goto nameDone
		}
		first = false
	}
nameDone:
	if len(fc.Name) == 0 {
		return nil, p.errf("empty file name template")
	}
	// Bindings: IDENT = expr:expr(:expr)? — but stop when the next token
	// starts another file clause (DIR[) or the block ends.
	for {
		t := p.peek()
		if t.Kind != tokIdent || !p.peekAt(1).isPunct("=") {
			break
		}
		if t.isKeyword("DIR") && p.peekAt(1).isPunct("[") {
			break
		}
		p.next() // var
		p.next() // =
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		step := Expr(NumberExpr{1})
		if p.peek().isPunct(":") {
			p.next()
			step, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		fc.Bindings = append(fc.Bindings, Binding{Var: t.Text, Lo: lo, Hi: hi, Step: step, Pos: t.pos()})
	}
	return fc, nil
}

// parseExpr parses an integer bound expression with the usual
// precedence: (+ -) < (* / %) < unary minus, parentheses, $VAR or bare
// identifiers as variables.
func (p *parser) parseExpr() (Expr, error) {
	e, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek().isPunct("+") || p.peek().isPunct("-") {
		op := p.next().Text[0]
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		// Fold eagerly so constant sub-expressions print canonically
		// regardless of where they sit in a larger expression.
		e = ConstExpr(BinExpr{Op: op, L: e, R: r})
	}
	return ConstExpr(e), nil
}

func (p *parser) parseTerm() (Expr, error) {
	e, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek().isPunct("*") || p.peek().isPunct("/") || p.peek().isPunct("%") {
		op := p.next().Text[0]
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		e = ConstExpr(BinExpr{Op: op, L: e, R: r})
	}
	return e, nil
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == tokNumber:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return NumberExpr{v}, nil
	case t.isPunct("$"):
		p.next()
		v := p.next()
		if v.Kind != tokIdent {
			return nil, p.errf("expected variable name after $, got %s", v)
		}
		return VarExpr{v.Text}, nil
	case t.Kind == tokIdent:
		p.next()
		return VarExpr{t.Text}, nil
	case t.isPunct("("):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.isPunct("-"):
		p.next()
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return ConstExpr(NegExpr{e}), nil
	}
	return nil, p.errf("expected expression, got %s", t)
}
