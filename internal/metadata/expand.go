package metadata

import (
	"fmt"
	"path"
	"strconv"
	"strings"
)

// FileInstance is one concrete file produced by expanding a FileClause's
// bindings: the storage directory it lives in, its expanded name, and the
// binding-variable assignment that produced it. The assignment is the
// source of the file's implicit attributes (paper §4): attribute values
// that are not stored in the file but inferred from the directory or
// file name plus the meta-data description.
type FileInstance struct {
	Clause   *FileClause
	DirIndex int
	Dir      DirEntry
	Name     string
	Env      Env
}

// Path returns the file's path relative to the node's data root:
// dir-path/name.
func (fi FileInstance) Path() string {
	if fi.Dir.Path == "" {
		return fi.Name
	}
	return path.Join(fi.Dir.Path, fi.Name)
}

// Node returns the cluster node holding the file.
func (fi FileInstance) Node() string { return fi.Dir.Node }

// String renders node:path for diagnostics.
func (fi FileInstance) String() string { return fi.Dir.Node + ":" + fi.Path() }

// ExpandClause enumerates the concrete files of one clause by iterating
// its bindings in order (later bindings may reference earlier ones).
func ExpandClause(st *Storage, fc *FileClause) ([]FileInstance, error) {
	var out []FileInstance
	var rec func(i int, env Env) error
	rec = func(i int, env Env) error {
		if i == len(fc.Bindings) {
			inst, err := instantiate(st, fc, env)
			if err != nil {
				return err
			}
			out = append(out, inst)
			return nil
		}
		b := fc.Bindings[i]
		lo, hi, step, err := evalRange(b.Lo, b.Hi, b.Step, env)
		if err != nil {
			return fmt.Errorf("binding %s: %w", b.Var, err)
		}
		for v := lo; v <= hi; v += step {
			env2 := env.clone()
			env2[b.Var] = v
			if err := rec(i+1, env2); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, Env{}); err != nil {
		return nil, err
	}
	return out, nil
}

// evalRange evaluates lo:hi:step under env and checks step > 0, lo <= hi.
func evalRange(loE, hiE, stepE Expr, env Env) (lo, hi, step int64, err error) {
	if lo, err = loE.Eval(env); err != nil {
		return
	}
	if hi, err = hiE.Eval(env); err != nil {
		return
	}
	if step, err = stepE.Eval(env); err != nil {
		return
	}
	if step <= 0 {
		err = fmt.Errorf("metadata: non-positive step %d", step)
		return
	}
	if lo > hi {
		err = fmt.Errorf("metadata: empty range %d:%d", lo, hi)
	}
	return
}

func instantiate(st *Storage, fc *FileClause, env Env) (FileInstance, error) {
	dirIdx, err := fc.Dir.Eval(env)
	if err != nil {
		return FileInstance{}, err
	}
	if dirIdx < 0 || int(dirIdx) >= len(st.Dirs) {
		return FileInstance{}, fmt.Errorf("metadata: DIR[%d] out of range (have %d directories)", dirIdx, len(st.Dirs))
	}
	var b strings.Builder
	for _, p := range fc.Name {
		if p.Var == "" {
			b.WriteString(p.Lit)
			continue
		}
		v, ok := env[p.Var]
		if !ok {
			return FileInstance{}, fmt.Errorf("metadata: file name uses unbound variable $%s", p.Var)
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	// Freeze a copy of env for the instance.
	frozen := env.clone()
	return FileInstance{
		Clause:   fc,
		DirIndex: int(dirIdx),
		Dir:      st.Dirs[dirIdx],
		Name:     b.String(),
		Env:      frozen,
	}, nil
}

// ExpandLeaf enumerates all data files of a leaf dataset, across all of
// its DATA clauses.
func ExpandLeaf(st *Storage, n *DatasetNode) ([]FileInstance, error) {
	if !n.IsLeaf() {
		return nil, fmt.Errorf("metadata: ExpandLeaf on non-leaf dataset %q", n.Name)
	}
	var out []FileInstance
	for i := range n.Files {
		fis, err := ExpandClause(st, &n.Files[i])
		if err != nil {
			return nil, fmt.Errorf("metadata: dataset %q: %w", n.Name, err)
		}
		out = append(out, fis...)
	}
	return out, nil
}

// ExpandIndexFiles enumerates the index files of a chunked leaf and
// pairs each data file with its index file: the index instance whose
// binding environment agrees with the data file's on every shared
// variable. It returns a map from data-file position (index into the
// files slice) to index FileInstance.
func ExpandIndexFiles(st *Storage, n *DatasetNode, files []FileInstance) (map[int]FileInstance, error) {
	var idx []FileInstance
	for i := range n.IndexFiles {
		fis, err := ExpandClause(st, &n.IndexFiles[i])
		if err != nil {
			return nil, fmt.Errorf("metadata: dataset %q: %w", n.Name, err)
		}
		idx = append(idx, fis...)
	}
	out := make(map[int]FileInstance, len(files))
	for fi, f := range files {
		matches := 0
		for _, ix := range idx {
			if envAgrees(f.Env, ix.Env) {
				out[fi] = ix
				matches++
			}
		}
		if matches == 0 {
			return nil, fmt.Errorf("metadata: dataset %q: no index file matches data file %s", n.Name, f)
		}
		if matches > 1 {
			return nil, fmt.Errorf("metadata: dataset %q: %d index files match data file %s", n.Name, matches, f)
		}
	}
	return out, nil
}

// envAgrees reports whether the two environments assign equal values to
// every variable they share.
func envAgrees(a, b Env) bool {
	for k, va := range a {
		if vb, ok := b[k]; ok && va != vb {
			return false
		}
	}
	return true
}
