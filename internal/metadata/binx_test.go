package metadata

import (
	"strings"
	"testing"
)

const binxSample = `
<binx byteOrder="littleEndian">
  <dataset src="node0/data/file0.dat" name="Ipars2">
    <arrayFixed>
      <dim name="TIME" count="500"/>
      <dim name="GRID" count="100"/>
      <struct>
        <float-32 varName="SOIL"/>
        <float-32 varName="SGAS"/>
      </struct>
    </arrayFixed>
  </dataset>
</binx>
`

func TestFromBinX(t *testing.T) {
	d, err := FromBinX(binxSample)
	if err != nil {
		t.Fatalf("FromBinX: %v", err)
	}
	sch := d.TableSchema()
	if sch == nil {
		t.Fatal("no table schema")
	}
	wantCols := []string{"TIME", "GRID", "SOIL", "SGAS"}
	if strings.Join(sch.Names(), " ") != strings.Join(wantCols, " ") {
		t.Errorf("columns = %v", sch.Names())
	}
	if k, _ := sch.Kind("TIME"); k.String() != "int" {
		t.Errorf("TIME kind = %v", k)
	}
	if d.Storage.Dirs[0].Node != "node0" || d.Storage.Dirs[0].Path != "data" {
		t.Errorf("storage = %+v", d.Storage.Dirs[0])
	}
	// The loop nest: TIME outer, GRID inner, SOIL+SGAS payload.
	text := d.String()
	for _, want := range []string{
		"LOOP TIME 0:499:1", "LOOP GRID 0:99:1", "SOIL", "SGAS",
		"DIR[0]/file0.dat", "DATAINDEX { TIME GRID }",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("descriptor missing %q:\n%s", want, text)
		}
	}
	// The text form re-parses (full interop with the native toolchain).
	if _, err := Parse(text); err != nil {
		t.Errorf("converted descriptor does not re-parse: %v\n%s", err, text)
	}
}

func TestFromBinXBigEndianAndBareStruct(t *testing.T) {
	src := `
<binx byteOrder="bigEndian">
  <dataset src="scalars.bin">
    <struct>
      <integer-32 varName="COUNT"/>
      <double-64 varName="MEAN"/>
    </struct>
  </dataset>
</binx>
`
	d, err := FromBinX(src)
	if err != nil {
		t.Fatalf("FromBinX: %v", err)
	}
	if d.Layout.ByteOrder != "BIG" {
		t.Errorf("byte order = %q", d.Layout.ByteOrder)
	}
	if d.Storage.Dirs[0].Node != "localhost" {
		t.Errorf("bare file node = %q", d.Storage.Dirs[0].Node)
	}
	if d.TableSchema().NumAttrs() != 2 {
		t.Errorf("attrs = %v", d.TableSchema().Names())
	}
}

func TestFromBinXUnnamedFields(t *testing.T) {
	src := `
<binx>
  <dataset src="n/x.bin">
    <arrayFixed>
      <dim name="I" count="4"/>
      <struct>
        <float-32/>
        <integer-16 varName="B"/>
      </struct>
    </arrayFixed>
  </dataset>
</binx>
`
	d, err := FromBinX(src)
	if err != nil {
		t.Fatal(err)
	}
	names := d.TableSchema().Names()
	if strings.Join(names, " ") != "I FIELD0 B" {
		t.Errorf("names = %v", names)
	}
}

func TestFromBinXErrors(t *testing.T) {
	bad := map[string]string{
		"not xml":       "<<<",
		"no src":        `<binx><dataset><struct><float-32 varName="A"/></struct></dataset></binx>`,
		"no fields":     `<binx><dataset src="f"><arrayFixed><dim name="I" count="3"/></arrayFixed></dataset></binx>`,
		"bad primitive": `<binx><dataset src="f"><struct><utf8-string varName="S"/></struct></dataset></binx>`,
		"bad dim":       `<binx><dataset src="f"><arrayFixed><dim count="3"/><struct><float-32 varName="A"/></struct></arrayFixed></dataset></binx>`,
		"bad order":     `<binx byteOrder="middleEndian"><dataset src="f"><struct><float-32 varName="A"/></struct></dataset></binx>`,
		"nothing":       `<binx><dataset src="f"></dataset></binx>`,
	}
	for name, src := range bad {
		if _, err := FromBinX(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
