package metadata

import (
	"fmt"

	"datavirt/internal/schema"
)

// Validate checks the structural rules of a descriptor:
//
//   - the storage description exists and references a declared schema,
//     and no DIR replica set (DIR[i] = NODES n1, n2, ...) names the
//     same node twice;
//   - the layout exists; every dataset node resolves to a schema via its
//     own or an inherited DATATYPE;
//   - leaves have DATA file clauses and exactly one of DATASPACE or
//     CHUNKED; CHUNKED leaves also need INDEXFILE and DATAINDEX;
//   - every attribute named in a DATASPACE, CHUNKED or DATAINDEX block
//     resolves to a schema or DATATYPE-declared attribute (DATAINDEX may
//     also name loop/binding variables);
//   - loop variables do not shadow enclosing loop variables; loop bounds
//     and file templates only use variables that something binds.
//
// Parse calls Validate automatically.
func Validate(d *Descriptor) error {
	if len(d.Schemas) == 0 {
		return fmt.Errorf("metadata: descriptor has no schema sections")
	}
	if d.Storage == nil {
		return fmt.Errorf("metadata: descriptor has no storage description")
	}
	if d.Schema(d.Storage.SchemaName) == nil {
		return fmt.Errorf("metadata: storage [%s] references unknown schema %q",
			d.Storage.DatasetName, d.Storage.SchemaName)
	}
	for _, e := range d.Storage.Dirs {
		dup := map[string]bool{}
		for _, n := range e.ReplicaNodes() {
			if dup[n] {
				return fmt.Errorf("metadata: storage [%s]: DIR[%d] lists node %q twice in its replica set",
					d.Storage.DatasetName, e.Index, n)
			}
			dup[n] = true
		}
	}
	if d.Layout == nil {
		return fmt.Errorf("metadata: descriptor has no layout description")
	}
	seen := map[string]bool{}
	return validateNode(d, d.Layout, "", nil, nil, seen)
}

// attrKinds builds the attribute table visible inside a node: the
// effective schema's attributes plus inherited and local DATATYPE extras.
func attrKinds(sch *schema.Schema, extras []schema.Attribute) map[string]schema.Kind {
	t := make(map[string]schema.Kind, sch.NumAttrs()+len(extras))
	for _, a := range sch.Attrs() {
		t[a.Name] = a.Kind
	}
	for _, a := range extras {
		t[a.Name] = a.Kind
	}
	return t
}

func validateNode(d *Descriptor, n *DatasetNode, inheritedType string, inheritedExtras []schema.Attribute, inheritedIndex []string, seenNames map[string]bool) error {
	if n.Name == "" {
		return fmt.Errorf("metadata: dataset with empty name")
	}
	if seenNames[n.Name] {
		return fmt.Errorf("metadata: duplicate dataset name %q", n.Name)
	}
	seenNames[n.Name] = true

	typeName := n.TypeName
	if typeName == "" {
		typeName = inheritedType
	}
	if typeName == "" {
		return fmt.Errorf("metadata: dataset %q has no DATATYPE (own or inherited)", n.Name)
	}
	sch := d.Schema(typeName)
	if sch == nil {
		return fmt.Errorf("metadata: dataset %q references unknown schema %q", n.Name, typeName)
	}
	extras := append(append([]schema.Attribute(nil), inheritedExtras...), n.ExtraAttrs...)
	table := attrKinds(sch, extras)
	indexAttrs := n.IndexAttrs
	if len(indexAttrs) == 0 {
		indexAttrs = inheritedIndex
	}

	if !n.IsLeaf() {
		if n.Space != nil || len(n.Chunked) > 0 || len(n.Files) > 0 || len(n.IndexFiles) > 0 {
			return fmt.Errorf("metadata: dataset %q has both children and leaf clauses", n.Name)
		}
		for _, c := range n.Children {
			if err := validateNode(d, c, typeName, extras, indexAttrs, seenNames); err != nil {
				return err
			}
		}
		return validateIndexAttrs(n, table, nil)
	}

	// Leaf rules.
	if len(n.Files) == 0 {
		return fmt.Errorf("metadata: leaf dataset %q has no DATA file clauses", n.Name)
	}
	switch {
	case n.Space != nil && len(n.Chunked) > 0:
		return fmt.Errorf("metadata: dataset %q has both DATASPACE and CHUNKED", n.Name)
	case n.Space == nil && len(n.Chunked) == 0:
		return fmt.Errorf("metadata: leaf dataset %q has neither DATASPACE nor CHUNKED", n.Name)
	}
	if len(n.Chunked) > 0 {
		if len(n.IndexFiles) == 0 {
			return fmt.Errorf("metadata: chunked dataset %q has no INDEXFILE", n.Name)
		}
		if len(indexAttrs) == 0 {
			return fmt.Errorf("metadata: chunked dataset %q has no DATAINDEX (own or inherited)", n.Name)
		}
		for _, a := range n.Chunked {
			if _, ok := table[a]; !ok {
				return fmt.Errorf("metadata: dataset %q: CHUNKED names unknown attribute %q", n.Name, a)
			}
		}
	}

	// Variables bound by file clauses (union across clauses).
	bound := map[string]bool{}
	for i := range n.Files {
		if err := validateFileClause(d, n, &n.Files[i], bound); err != nil {
			return err
		}
	}
	for i := range n.IndexFiles {
		if err := validateFileClause(d, n, &n.IndexFiles[i], bound); err != nil {
			return err
		}
	}

	if n.Space != nil {
		loopVars := map[string]bool{}
		if err := validateSpaceItems(n, n.Space.Items, table, bound, loopVars, map[string]bool{}); err != nil {
			return err
		}
		for v := range loopVars {
			bound[v] = true
		}
	}
	return validateIndexAttrs(n, table, bound)
}

func validateIndexAttrs(n *DatasetNode, table map[string]schema.Kind, bound map[string]bool) error {
	for _, a := range n.IndexAttrs {
		if _, ok := table[a]; ok {
			continue
		}
		if bound != nil && bound[a] {
			continue
		}
		if n.IsLeaf() {
			return fmt.Errorf("metadata: dataset %q: DATAINDEX names unknown attribute %q", n.Name, a)
		}
		// Non-leaf DATAINDEX may name variables bound in descendants; the
		// layout compiler re-checks with full context.
	}
	return nil
}

func validateFileClause(d *Descriptor, n *DatasetNode, fc *FileClause, boundOut map[string]bool) error {
	clauseVars := map[string]bool{}
	for _, b := range fc.Bindings {
		if clauseVars[b.Var] {
			return fmt.Errorf("metadata: dataset %q: duplicate binding for %q in file clause", n.Name, b.Var)
		}
		clauseVars[b.Var] = true
	}
	// Binding bounds may reference bindings that appear earlier in the
	// same clause.
	earlier := map[string]bool{}
	for _, b := range fc.Bindings {
		for _, v := range exprVarsSorted(b.Lo, b.Hi, b.Step) {
			if !earlier[v] {
				return fmt.Errorf("metadata: dataset %q: binding %s uses variable $%s not bound earlier in the clause", n.Name, b.Var, v)
			}
		}
		earlier[b.Var] = true
	}
	// Template vars (dir expression and name) must be clause-bound.
	for _, v := range fc.Vars() {
		if !clauseVars[v] {
			return fmt.Errorf("metadata: dataset %q: file template uses unbound variable $%s", n.Name, v)
		}
	}
	// Dir expression must be resolvable to a storage index at expansion;
	// constant dirs can be checked now.
	if c, ok := fc.Dir.(NumberExpr); ok {
		if c.Value < 0 || int(c.Value) >= len(d.Storage.Dirs) {
			return fmt.Errorf("metadata: dataset %q: DIR[%d] out of range (have %d directories)", n.Name, c.Value, len(d.Storage.Dirs))
		}
	}
	for v := range clauseVars {
		boundOut[v] = true
	}
	return nil
}

func validateSpaceItems(n *DatasetNode, items []SpaceItem, table map[string]schema.Kind, fileVars map[string]bool, loopVarsOut map[string]bool, enclosing map[string]bool) error {
	sawAny := false
	for _, it := range items {
		switch item := it.(type) {
		case AttrRef:
			sawAny = true
			if _, ok := table[item.Name]; !ok {
				return fmt.Errorf("metadata: dataset %q: DATASPACE names unknown attribute %q", n.Name, item.Name)
			}
		case *Loop:
			sawAny = true
			if enclosing[item.Var] {
				return fmt.Errorf("metadata: dataset %q: loop variable %q shadows an enclosing loop", n.Name, item.Var)
			}
			if k, isAttr := table[item.Var]; isAttr && !k.Integral() {
				return fmt.Errorf("metadata: dataset %q: loop variable %q matches non-integral attribute", n.Name, item.Var)
			}
			for _, v := range exprVarsSorted(item.Lo, item.Hi, item.Step) {
				if !fileVars[v] && !enclosing[v] {
					return fmt.Errorf("metadata: dataset %q: loop bound uses unbound variable $%s", n.Name, v)
				}
			}
			if len(item.Body) == 0 {
				return fmt.Errorf("metadata: dataset %q: empty LOOP %s body", n.Name, item.Var)
			}
			loopVarsOut[item.Var] = true
			inner := make(map[string]bool, len(enclosing)+1)
			for v := range enclosing {
				inner[v] = true
			}
			inner[item.Var] = true
			if err := validateSpaceItems(n, item.Body, table, fileVars, loopVarsOut, inner); err != nil {
				return err
			}
		default:
			return fmt.Errorf("metadata: dataset %q: unknown dataspace item %T", n.Name, it)
		}
	}
	if !sawAny {
		return fmt.Errorf("metadata: dataset %q: empty DATASPACE", n.Name)
	}
	return nil
}

// EffectiveIndexAttrs resolves the DATAINDEX attribute list visible at
// target: its own if declared, otherwise the nearest ancestor's.
func (d *Descriptor) EffectiveIndexAttrs(target *DatasetNode) []string {
	var walk func(n *DatasetNode, inherited []string) ([]string, bool)
	walk = func(n *DatasetNode, inherited []string) ([]string, bool) {
		attrs := n.IndexAttrs
		if len(attrs) == 0 {
			attrs = inherited
		}
		if n == target {
			return attrs, true
		}
		for _, c := range n.Children {
			if got, ok := walk(c, attrs); ok {
				return got, true
			}
		}
		return nil, false
	}
	if d.Layout == nil {
		return nil
	}
	got, _ := walk(d.Layout, nil)
	return got
}

// EffectiveByteOrder resolves the byte order in force at target: its
// own BYTEORDER if declared, otherwise the nearest ancestor's, with
// LITTLE as the overall default.
func (d *Descriptor) EffectiveByteOrder(target *DatasetNode) string {
	var walk func(n *DatasetNode, inherited string) (string, bool)
	walk = func(n *DatasetNode, inherited string) (string, bool) {
		order := n.ByteOrder
		if order == "" {
			order = inherited
		}
		if n == target {
			return order, true
		}
		for _, c := range n.Children {
			if got, ok := walk(c, order); ok {
				return got, true
			}
		}
		return "", false
	}
	if d.Layout == nil {
		return "LITTLE"
	}
	got, ok := walk(d.Layout, "")
	if !ok || got == "" {
		return "LITTLE"
	}
	return got
}

// EffectiveSchema resolves the schema a node realizes, walking from the
// root. It returns the schema plus the DATATYPE extras accumulated on
// the path. The node must be reachable from d.Layout.
func (d *Descriptor) EffectiveSchema(target *DatasetNode) (*schema.Schema, []schema.Attribute, error) {
	var walk func(n *DatasetNode, typeName string, extras []schema.Attribute) (*schema.Schema, []schema.Attribute, bool)
	walk = func(n *DatasetNode, typeName string, extras []schema.Attribute) (*schema.Schema, []schema.Attribute, bool) {
		if n.TypeName != "" {
			typeName = n.TypeName
		}
		extras = append(append([]schema.Attribute(nil), extras...), n.ExtraAttrs...)
		if n == target {
			return d.Schema(typeName), extras, true
		}
		for _, c := range n.Children {
			if s, e, ok := walk(c, typeName, extras); ok {
				return s, e, ok
			}
		}
		return nil, nil, false
	}
	if d.Layout == nil {
		return nil, nil, fmt.Errorf("metadata: descriptor has no layout")
	}
	s, e, ok := walk(d.Layout, "", nil)
	if !ok {
		return nil, nil, fmt.Errorf("metadata: dataset %q not found in layout", target.Name)
	}
	if s == nil {
		return nil, nil, fmt.Errorf("metadata: dataset %q has no resolvable schema", target.Name)
	}
	return s, e, nil
}
