package metadata

import (
	"strings"
	"testing"
	"testing/quick"

	"datavirt/internal/schema"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex(`Dataset "ipars1" { LOOP GRID ($DIRID*100+1):500 }`, 1)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	kinds := []tokKind{tokIdent, tokString, tokPunct, tokIdent, tokIdent,
		tokPunct, tokPunct, tokIdent, tokPunct, tokNumber, tokPunct, tokNumber,
		tokPunct, tokPunct, tokNumber, tokPunct, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v (kind %d), want kind %d", i, toks[i], toks[i].Kind, k)
		}
	}
	// Adjacency: '$' and DIRID are adjacent; '(' and '$' adjacent; GRID
	// and '(' are separated by a space.
	if !toks[7].Adjacent { // DIRID after $
		t.Error("DIRID should be adjacent to $")
	}
	if toks[5].Adjacent { // '(' after GRID (space between)
		t.Error("'(' should not be adjacent to GRID")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex(`"unterminated`, 1); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("a ; b", 1); err == nil {
		t.Error("unknown character accepted")
	}
}

func TestExprParseEval(t *testing.T) {
	cases := []struct {
		src  string
		env  Env
		want int64
	}{
		{"1+2*3", nil, 7},
		{"(1+2)*3", nil, 9},
		{"10-4-3", nil, 3}, // left assoc
		{"20/3", nil, 6},
		{"20%3", nil, 2},
		{"-5+2", nil, -3},
		{"$DIRID*100+1", Env{"DIRID": 2}, 201},
		{"($DIRID+1)*100", Env{"DIRID": 2}, 300},
		{"DIRID", Env{"DIRID": 3}, 3}, // bare identifier form
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.src, err)
			continue
		}
		got, err := e.Eval(c.env)
		if err != nil || got != c.want {
			t.Errorf("Eval(%q, %v) = %d, %v; want %d", c.src, c.env, got, err, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	if _, err := ParseExpr("1+"); err == nil {
		t.Error("dangling operator accepted")
	}
	if _, err := ParseExpr("(1"); err == nil {
		t.Error("unbalanced paren accepted")
	}
	e, err := ParseExpr("$X/$Y")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(Env{"X": 1, "Y": 0}); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := e.Eval(Env{"X": 1}); err == nil {
		t.Error("unbound variable accepted")
	}
	m, _ := ParseExpr("$X%$Y")
	if _, err := m.Eval(Env{"X": 1, "Y": 0}); err == nil {
		t.Error("modulo by zero accepted")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	srcs := []string{"1+2*3", "($A+1)*100", "-$B", "$A%7-2"}
	env := Env{"A": 5, "B": -3}
	for _, src := range srcs {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		e2, err := ParseExpr(e1.String())
		if err != nil {
			t.Fatalf("reparse %q (printed %q): %v", src, e1.String(), err)
		}
		v1, _ := e1.Eval(env)
		v2, err := e2.Eval(env)
		if err != nil || v1 != v2 {
			t.Errorf("%q: round trip %d -> %d (%v)", src, v1, v2, err)
		}
	}
}

func TestConstExprFolds(t *testing.T) {
	e, _ := ParseExpr("2*3+4")
	if n, ok := e.(NumberExpr); !ok || n.Value != 10 {
		t.Errorf("ConstExpr did not fold: %v", e)
	}
	e, _ = ParseExpr("$X*2")
	if _, ok := e.(NumberExpr); ok {
		t.Error("ConstExpr folded a variable expression")
	}
}

func TestParseIparsDescriptor(t *testing.T) {
	d, err := Parse(iparsDescriptor)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(d.Schemas) != 1 || d.Schemas[0].Name() != "IPARS" {
		t.Fatalf("schemas: %v", d.Schemas)
	}
	if d.TableSchema() == nil || d.TableSchema().NumAttrs() != 7 {
		t.Fatal("TableSchema not resolved")
	}
	st := d.Storage
	if st.DatasetName != "IparsData" || st.SchemaName != "IPARS" || len(st.Dirs) != 4 {
		t.Fatalf("storage: %+v", st)
	}
	if st.Dirs[2].Node != "osu2" || st.Dirs[2].Path != "ipars" {
		t.Errorf("dir 2 = %+v", st.Dirs[2])
	}
	root := d.Layout
	if root.Name != "IparsData" || root.TypeName != "IPARS" {
		t.Fatalf("root: %+v", root)
	}
	if len(root.IndexAttrs) != 2 || root.IndexAttrs[0] != "REL" || root.IndexAttrs[1] != "TIME" {
		t.Errorf("IndexAttrs = %v", root.IndexAttrs)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %d", len(root.Children))
	}
	ip1, ip2 := root.Children[0], root.Children[1]
	if ip1.Name != "ipars1" || ip2.Name != "ipars2" {
		t.Fatalf("child order: %s, %s", ip1.Name, ip2.Name)
	}
	// ipars1: single GRID loop over X Y Z.
	if ip1.Space == nil || len(ip1.Space.Items) != 1 {
		t.Fatal("ipars1 space missing")
	}
	grid, ok := ip1.Space.Items[0].(*Loop)
	if !ok || grid.Var != "GRID" || len(grid.Body) != 3 {
		t.Fatalf("ipars1 loop: %+v", ip1.Space.Items[0])
	}
	lo, err := grid.Lo.Eval(Env{"DIRID": 3})
	if err != nil || lo != 301 {
		t.Errorf("grid.Lo(DIRID=3) = %d, %v", lo, err)
	}
	hi, _ := grid.Hi.Eval(Env{"DIRID": 3})
	if hi != 400 {
		t.Errorf("grid.Hi(DIRID=3) = %d", hi)
	}
	// ipars2: TIME loop wrapping GRID loop over SOIL SGAS.
	tl, ok := ip2.Space.Items[0].(*Loop)
	if !ok || tl.Var != "TIME" {
		t.Fatalf("ipars2 outer loop: %+v", ip2.Space.Items[0])
	}
	gl, ok := tl.Body[0].(*Loop)
	if !ok || gl.Var != "GRID" || len(gl.Body) != 2 {
		t.Fatalf("ipars2 inner loop: %+v", tl.Body[0])
	}
	// ipars2 file clause: DATA$REL with two bindings.
	if len(ip2.Files) != 1 {
		t.Fatalf("ipars2 files: %d", len(ip2.Files))
	}
	fc := ip2.Files[0]
	if got := fc.NameString(); got != "DATA$REL" {
		t.Errorf("name template = %q", got)
	}
	if len(fc.Bindings) != 2 || fc.Bindings[0].Var != "REL" || fc.Bindings[1].Var != "DIRID" {
		t.Errorf("bindings = %+v", fc.Bindings)
	}
}

func TestParseTitanDescriptor(t *testing.T) {
	d, err := Parse(titanDescriptor)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	leaves := d.Layout.Leaves(nil)
	if len(leaves) != 1 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	c := leaves[0]
	if len(c.Chunked) != 8 || c.Chunked[0] != "X" || c.Chunked[7] != "S5" {
		t.Errorf("Chunked = %v", c.Chunked)
	}
	if len(c.IndexFiles) != 1 {
		t.Fatalf("IndexFiles = %d", len(c.IndexFiles))
	}
	if got := c.IndexFiles[0].NameString(); got != "chunks.idx" {
		t.Errorf("index file name = %q", got)
	}
	sch, _, err := d.EffectiveSchema(c)
	if err != nil || sch.Name() != "TITAN" {
		t.Errorf("EffectiveSchema = %v, %v", sch, err)
	}
}

func TestDescriptorStringRoundTrip(t *testing.T) {
	for _, src := range []string{iparsDescriptor, titanDescriptor} {
		d1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		printed := d1.String()
		d2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse printed descriptor: %v\n--- printed ---\n%s", err, printed)
		}
		if d2.String() != printed {
			t.Errorf("print not a fixpoint:\n%s\nvs\n%s", printed, d2.String())
		}
	}
}

func TestExpandLeafIpars(t *testing.T) {
	d, err := Parse(iparsDescriptor)
	if err != nil {
		t.Fatal(err)
	}
	ip1, ip2 := d.Layout.Children[0], d.Layout.Children[1]

	fis, err := ExpandLeaf(d.Storage, ip1)
	if err != nil {
		t.Fatalf("ExpandLeaf(ipars1): %v", err)
	}
	if len(fis) != 4 {
		t.Fatalf("ipars1 files = %d, want 4", len(fis))
	}
	if fis[2].Name != "COORDS" || fis[2].Dir.Node != "osu2" || fis[2].Env["DIRID"] != 2 {
		t.Errorf("ipars1 instance 2 = %+v", fis[2])
	}
	if fis[1].Path() != "ipars/COORDS" {
		t.Errorf("Path = %q", fis[1].Path())
	}

	fis2, err := ExpandLeaf(d.Storage, ip2)
	if err != nil {
		t.Fatalf("ExpandLeaf(ipars2): %v", err)
	}
	if len(fis2) != 16 {
		t.Fatalf("ipars2 files = %d, want 16", len(fis2))
	}
	// Binding order: REL outer, DIRID inner.
	if fis2[0].Name != "DATA0" || fis2[0].Env["DIRID"] != 0 {
		t.Errorf("first = %+v", fis2[0])
	}
	if fis2[5].Name != "DATA1" || fis2[5].Env["DIRID"] != 1 {
		t.Errorf("sixth = %+v", fis2[5])
	}
	names := map[string]int{}
	for _, fi := range fis2 {
		names[fi.Name]++
	}
	for _, want := range []string{"DATA0", "DATA1", "DATA2", "DATA3"} {
		if names[want] != 4 {
			t.Errorf("file %s count = %d, want 4", want, names[want])
		}
	}
}

func TestExpandIndexFilesPairing(t *testing.T) {
	d, err := Parse(titanDescriptor)
	if err != nil {
		t.Fatal(err)
	}
	leaf := d.Layout.Leaves(nil)[0]
	files, err := ExpandLeaf(d.Storage, leaf)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ExpandIndexFiles(d.Storage, leaf, files)
	if err != nil {
		t.Fatalf("ExpandIndexFiles: %v", err)
	}
	if len(pairs) != 1 || pairs[0].Name != "chunks.idx" {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestExpandErrors(t *testing.T) {
	st := &Storage{DatasetName: "D", SchemaName: "S",
		Dirs: []DirEntry{{Index: 0, Node: "n0", Path: "d"}}}
	// Dir index out of range.
	fc := &FileClause{
		Dir:      NumberExpr{5},
		Name:     []NamePart{{Lit: "f"}},
		Bindings: nil,
	}
	if _, err := ExpandClause(st, fc); err == nil {
		t.Error("out-of-range dir accepted")
	}
	// Empty binding range.
	fc2 := &FileClause{
		Dir:      NumberExpr{0},
		Name:     []NamePart{{Lit: "f"}, {Var: "I"}},
		Bindings: []Binding{{Var: "I", Lo: NumberExpr{3}, Hi: NumberExpr{1}, Step: NumberExpr{1}}},
	}
	if _, err := ExpandClause(st, fc2); err == nil {
		t.Error("empty range accepted")
	}
	// Non-positive step.
	fc3 := &FileClause{
		Dir:      NumberExpr{0},
		Name:     []NamePart{{Var: "I"}},
		Bindings: []Binding{{Var: "I", Lo: NumberExpr{0}, Hi: NumberExpr{1}, Step: NumberExpr{0}}},
	}
	if _, err := ExpandClause(st, fc3); err == nil {
		t.Error("zero step accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	mutations := []struct {
		name string
		src  string
	}{
		{"no storage", "[S]\nA = int\nDataset \"d\" { DATATYPE { S } DATASPACE { A } DATA { DIR[0]/f } }"},
		{"unknown schema ref", strings.Replace(iparsDescriptor, "DatasetDescription = IPARS", "DatasetDescription = NOPE", 1)},
		{"unknown datatype", strings.Replace(iparsDescriptor, "DATATYPE { IPARS }", "DATATYPE { WRONG }", 1)},
		{"unknown dataspace attr", strings.Replace(iparsDescriptor, "SOIL SGAS", "SOIL WAT", 1)},
		{"unknown index attr", strings.Replace(iparsDescriptor, "DATAINDEX { REL TIME }", "DATAINDEX { REL TIME }\nDataset \"bad\" { DATAINDEX { BOGUS } DATASPACE { SOIL } DATA { DIR[0]/x } }", 1)},
		{"unbound template var", strings.Replace(iparsDescriptor, "DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }", "DATA { DIR[$DIRID]/COORDS }", 1)},
		{"unbound loop var", strings.Replace(iparsDescriptor, "($DIRID*100+1):(($DIRID+1)*100):1", "($NOPE*100+1):100:1", 1)},
		{"dup dataset name", strings.Replace(iparsDescriptor, `Dataset "ipars2"`, `Dataset "ipars1"`, 1)},
		{"missing component III", iparsDescriptor[:strings.Index(iparsDescriptor, "Dataset \"IparsData\"")]},
	}
	for _, m := range mutations {
		if _, err := Parse(m.src); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestValidateLeafShapeRules(t *testing.T) {
	base := `
[S]
A = int
[D]
DatasetDescription = S
DIR[0] = n0/d
`
	bad := map[string]string{
		"leaf without DATA":      `Dataset "x" { DATATYPE { S } DATASPACE { A } }`,
		"leaf without space":     `Dataset "x" { DATATYPE { S } DATA { DIR[0]/f } }`,
		"space and chunked":      `Dataset "x" { DATATYPE { S } DATASPACE { A } CHUNKED { A } DATA { DIR[0]/f } }`,
		"chunked no indexfile":   `Dataset "x" { DATATYPE { S } DATAINDEX { A } CHUNKED { A } DATA { DIR[0]/f } }`,
		"chunked no dataindex":   `Dataset "x" { DATATYPE { S } CHUNKED { A } DATA { DIR[0]/f } INDEXFILE { DIR[0]/f.idx } }`,
		"chunked unknown attr":   `Dataset "x" { DATATYPE { S } DATAINDEX { A } CHUNKED { B } DATA { DIR[0]/f } INDEXFILE { DIR[0]/f.idx } }`,
		"loop shadowing":         `Dataset "x" { DATATYPE { S } DATASPACE { LOOP I 0:9:1 { LOOP I 0:9:1 { A } } } DATA { DIR[0]/f } }`,
		"empty loop body":        `Dataset "x" { DATATYPE { S } DATASPACE { LOOP I 0:9:1 { } } DATA { DIR[0]/f } }`,
		"const dir out of range": `Dataset "x" { DATATYPE { S } DATASPACE { A } DATA { DIR[7]/f } }`,
		"dup binding":            `Dataset "x" { DATATYPE { S } DATASPACE { A } DATA { DIR[0]/f$I I = 0:1:1 I = 0:1:1 } }`,
		"no datatype anywhere":   `Dataset "x" { DATASPACE { A } DATA { DIR[0]/f } }`,
	}
	for name, layout := range bad {
		if _, err := Parse(base + layout); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A correct minimal descriptor passes.
	good := base + `Dataset "x" { DATATYPE { S } DATASPACE { LOOP A 0:9:1 { A } } DATA { DIR[0]/f } }`
	if _, err := Parse(good); err != nil {
		t.Errorf("good descriptor rejected: %v", err)
	}
}

func TestDatatypeExtraAttrs(t *testing.T) {
	src := `
[S]
A = int
[D]
DatasetDescription = S
DIR[0] = n0/d

Dataset "x" {
  DATATYPE { S AUX = short int W = double }
  DATASPACE { LOOP I 0:4:1 { A AUX W } }
  DATA { DIR[0]/f }
}
`
	d, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	n := d.Layout
	if len(n.ExtraAttrs) != 2 {
		t.Fatalf("ExtraAttrs = %+v", n.ExtraAttrs)
	}
	if n.ExtraAttrs[0].Name != "AUX" || n.ExtraAttrs[0].Kind != schema.Short {
		t.Errorf("extra 0 = %+v", n.ExtraAttrs[0])
	}
	if n.ExtraAttrs[1].Name != "W" || n.ExtraAttrs[1].Kind != schema.Double {
		t.Errorf("extra 1 = %+v", n.ExtraAttrs[1])
	}
}

func TestStorageParseErrors(t *testing.T) {
	bad := []string{
		"[D]\nDatasetDescription = S\n",                                                       // no dirs
		"[D]\nDIR[0] = n/d\n[X]\nA=int\nDataset \"q\" {}",                                     // storage w/o DatasetDescription is schema → parse err later anyway
		"[D]\nDatasetDescription = S\nDIR[0] = n/d\nDIR[0] = n/d\n",                           // dup index
		"[D]\nDatasetDescription = S\nDIR[1] = n/d\n",                                         // not from 0
		"[D]\nDatasetDescription = S\nDIR[x] = n/d\n",                                         // bad index
		"[D]\nDatasetDescription = S\nDIR[0] = /d\n",                                          // empty node
		"[D]\nDatasetDescription = S\nDatasetDescription = T\nDIR[0]=n",                       // dup key
		"[D]\nDatasetDescription = S\nWEIRD = 1\n",                                            // unknown key
		"stray line\n[D]\nDatasetDescription = S\nDIR[0] = n\n",                               // content before section
		"[D]\nDatasetDescription = S\nDIR[0] = n\n[D2]\nDatasetDescription = S\nDIR[0] = n\n", // two storage sections
	}
	for _, src := range bad {
		full := "[S]\nA = int\n" + src + "\nDataset \"x\" { DATATYPE { S } DATASPACE { A } DATA { DIR[0]/f } }"
		if _, err := Parse(full); err == nil {
			t.Errorf("storage source accepted:\n%s", src)
		}
	}
}

func TestEnvAgrees(t *testing.T) {
	if !envAgrees(Env{"A": 1, "B": 2}, Env{"B": 2, "C": 9}) {
		t.Error("agreeing envs reported as disagreeing")
	}
	if envAgrees(Env{"A": 1}, Env{"A": 2}) {
		t.Error("disagreeing envs reported as agreeing")
	}
	if !envAgrees(Env{}, Env{"A": 1}) {
		t.Error("disjoint envs should agree")
	}
}

// Property: expanding a single-binding clause yields exactly the range
// ⌊(hi-lo)/step⌋+1 instances, with distinct names when the var is in the
// template.
func TestExpandCountQuick(t *testing.T) {
	st := &Storage{DatasetName: "D", SchemaName: "S",
		Dirs: []DirEntry{{Index: 0, Node: "n", Path: "p"}}}
	f := func(loRaw int16, span uint8, stepRaw uint8) bool {
		lo := int64(loRaw)
		step := int64(stepRaw%7) + 1
		hi := lo + int64(span)
		fc := &FileClause{
			Dir:  NumberExpr{0},
			Name: []NamePart{{Lit: "f"}, {Var: "I"}},
			Bindings: []Binding{
				{Var: "I", Lo: NumberExpr{lo}, Hi: NumberExpr{hi}, Step: NumberExpr{step}},
			},
		}
		fis, err := ExpandClause(st, fc)
		if err != nil {
			return false
		}
		want := (hi-lo)/step + 1
		if int64(len(fis)) != want {
			return false
		}
		seen := map[string]bool{}
		for _, fi := range fis {
			if seen[fi.Name] {
				return false
			}
			seen[fi.Name] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
