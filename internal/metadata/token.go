// Package metadata implements the meta-data description language of
// Weng et al. (HPDC 2004). A descriptor has three components:
//
//	Component I   — Dataset Schema Description (virtual table schema;
//	                parsed by internal/schema and referenced here),
//	Component II  — Dataset Storage Description (the nodes and
//	                directories where files live),
//	Component III — Dataset Layout Description (nested DATASET blocks
//	                built from DATATYPE, DATAINDEX, DATASPACE, DATA,
//	                LOOP, and — for variable-length chunked data with an
//	                external spatial index — CHUNKED and INDEXFILE).
//
// The package provides the lexer, parser, AST, integer bound-expression
// evaluator, validation, and a pretty-printer whose output re-parses to
// the same descriptor.
package metadata

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // "quoted"
	tokPunct  // one of { } ( ) [ ] : = $ , . / * + - %
)

// token is one lexical token. Adjacent reports that the token directly
// follows the previous token with no intervening whitespace; the path-
// template parser uses it to know where a file name ends.
type token struct {
	Kind     tokKind
	Text     string
	Line     int
	Adjacent bool
}

func (t token) String() string {
	switch t.Kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// isPunct reports whether t is the punctuation c.
func (t token) isPunct(c string) bool { return t.Kind == tokPunct && t.Text == c }

// isKeyword reports whether t is the given keyword, compared
// case-insensitively (the paper itself mixes DATASET/Dataset/Data).
func (t token) isKeyword(kw string) bool {
	return t.Kind == tokIdent && strings.EqualFold(t.Text, kw)
}

const punctChars = "{}()[]:=$,./*+-%"

// lex tokenizes src (which must already have comments stripped).
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	sawSpace := true
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == '\n':
			line++
			sawSpace = true
			i++
		case c == ' ' || c == '\t' || c == '\r':
			sawSpace = true
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' && src[j] != '\n' {
				j++
			}
			if j >= len(src) || src[j] != '"' {
				return nil, fmt.Errorf("metadata: line %d: unterminated string", line)
			}
			toks = append(toks, token{tokString, src[i+1 : j], line, !sawSpace})
			sawSpace = false
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line, !sawSpace})
			sawSpace = false
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line, !sawSpace})
			sawSpace = false
			i = j
		case strings.IndexByte(punctChars, c) >= 0:
			toks = append(toks, token{tokPunct, string(c), line, !sawSpace})
			sawSpace = false
			i++
		default:
			return nil, fmt.Errorf("metadata: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line, false})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
