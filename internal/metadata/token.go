// Package metadata implements the meta-data description language of
// Weng et al. (HPDC 2004). A descriptor has three components:
//
//	Component I   — Dataset Schema Description (virtual table schema;
//	                parsed by internal/schema and referenced here),
//	Component II  — Dataset Storage Description (the nodes and
//	                directories where files live),
//	Component III — Dataset Layout Description (nested DATASET blocks
//	                built from DATATYPE, DATAINDEX, DATASPACE, DATA,
//	                LOOP, and — for variable-length chunked data with an
//	                external spatial index — CHUNKED and INDEXFILE).
//
// The package provides the lexer, parser, AST, integer bound-expression
// evaluator, validation, and a pretty-printer whose output re-parses to
// the same descriptor.
package metadata

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // "quoted"
	tokPunct  // one of { } ( ) [ ] : = $ , . / * + - %
)

// token is one lexical token. Line and Col (both 1-based) locate its
// first character in the descriptor source. Adjacent reports that the
// token directly follows the previous token with no intervening
// whitespace; the path-template parser uses it to know where a file
// name ends.
type token struct {
	Kind     tokKind
	Text     string
	Line     int
	Col      int
	Adjacent bool
}

// pos returns the token's source position.
func (t token) pos() Pos { return Pos{Line: t.Line, Col: t.Col} }

func (t token) String() string {
	switch t.Kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// isPunct reports whether t is the punctuation c.
func (t token) isPunct(c string) bool { return t.Kind == tokPunct && t.Text == c }

// isKeyword reports whether t is the given keyword, compared
// case-insensitively (the paper itself mixes DATASET/Dataset/Data).
func (t token) isKeyword(kw string) bool {
	return t.Kind == tokIdent && strings.EqualFold(t.Text, kw)
}

const punctChars = "{}()[]:=$,./*+-%"

// lex tokenizes src (which must already have comments stripped).
// baseLine is the 1-based file line of src's first character, so token
// positions stay absolute when lexing the layout tail of a larger
// descriptor.
func lex(src string, baseLine int) ([]token, error) {
	var toks []token
	line := baseLine
	lineStart := 0 // byte offset of the current line's first character
	sawSpace := true
	col := func(i int) int { return i - lineStart + 1 }
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == '\n':
			line++
			sawSpace = true
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			sawSpace = true
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' && src[j] != '\n' {
				j++
			}
			if j >= len(src) || src[j] != '"' {
				return nil, fmt.Errorf("metadata: line %d: unterminated string", line)
			}
			toks = append(toks, token{tokString, src[i+1 : j], line, col(i), !sawSpace})
			sawSpace = false
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line, col(i), !sawSpace})
			sawSpace = false
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line, col(i), !sawSpace})
			sawSpace = false
			i = j
		case strings.IndexByte(punctChars, c) >= 0:
			toks = append(toks, token{tokPunct, string(c), line, col(i), !sawSpace})
			sawSpace = false
			i++
		default:
			return nil, fmt.Errorf("metadata: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line, 1, false})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
