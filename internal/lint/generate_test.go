package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"datavirt/internal/lint"
)

// TestGeneratedStatsFresh regenerates the stats merge files from the
// live struct definitions and asserts the committed files match byte
// for byte — the test-suite mirror of `dvlint -generate -check`, so a
// counter added to obs.QueryStats without rerunning the generator
// fails the ordinary test tier, not just CI.
func TestGeneratedStatsFresh(t *testing.T) {
	loader(t) // initialize moduleDir
	files, err := lint.GeneratedStatsFiles(moduleDir, "datavirt")
	if err != nil {
		t.Fatalf("GeneratedStatsFiles: %v", err)
	}
	if len(files) != 2 {
		t.Fatalf("expected 2 generated files, got %d", len(files))
	}
	for rel, want := range files {
		have, err := os.ReadFile(filepath.Join(moduleDir, filepath.FromSlash(rel)))
		if err != nil {
			t.Errorf("%s: %v (run dvlint -generate)", rel, err)
			continue
		}
		if string(have) != string(want) {
			t.Errorf("%s is stale: run dvlint -generate\n-- want --\n%s\n-- have --\n%s",
				rel, want, have)
		}
	}
}
