package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FrameProto checks the cluster wire protocol for exhaustiveness. The
// frame-kind constant set is derived from the package itself: every
// package-level `frame*` constant whose value is a character literal
// (frameQuery = 'Q', ...) is a kind; sized constants like
// frameHeaderLen are not. Two rules follow:
//
//   - every demux switch (a switch mentioning at least one frame kind
//     in its cases) either handles every kind or ends in a default
//     with a non-empty body that rejects the unexpected — an empty
//     default silently drops frames, which is how a newly added kind
//     ('A' aggregate frames) slips past an old reader;
//   - every kind has both a handle site (a case clause somewhere in
//     the package) and a produce site (a use outside case lists — the
//     encode path), so encode and decode cannot drift apart.
//
// The analyzer runs on packages named "cluster".
var FrameProto = &Analyzer{
	Name: "frameproto",
	Doc:  "every frame kind is handled (or explicitly rejected) by each demux switch and has matched encode/decode sites",
	Run:  runFrameProto,
}

func runFrameProto(pass *Pass) error {
	if pass.Pkg.Name != "cluster" {
		return nil
	}
	kinds := frameKinds(pass)
	if len(kinds.order) == 0 {
		return nil
	}

	handled := map[*types.Const]bool{}  // appears in some case clause
	produced := map[*types.Const]bool{} // used outside case lists
	caseIdents := map[*ast.Ident]bool{} // idents appearing in case lists

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			checkSwitch(pass, kinds, sw, handled, caseIdents)
			return true
		})
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || caseIdents[id] {
				return true
			}
			if c, ok := pass.Pkg.Info.Uses[id].(*types.Const); ok && kinds.set[c] {
				produced[c] = true
			}
			return true
		})
	}

	for _, c := range kinds.order {
		if !handled[c] {
			pass.Reportf(c.Pos(), "frame kind %s is not handled by any demux switch in the package; add a case (or reject it explicitly)", c.Name())
		}
		if !produced[c] {
			pass.Reportf(c.Pos(), "frame kind %s has no encode site: it is never used outside a case clause, so nothing can produce it", c.Name())
		}
	}
	return nil
}

// frameKindSet is the derived protocol alphabet, in declaration order.
type frameKindSet struct {
	set   map[*types.Const]bool
	order []*types.Const
}

// frameKinds collects the package-level frame* constants declared with
// character-literal values.
func frameKinds(pass *Pass) *frameKindSet {
	ks := &frameKindSet{set: map[*types.Const]bool{}}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "frame") || i >= len(vs.Values) {
						continue
					}
					lit, ok := ast.Unparen(vs.Values[i]).(*ast.BasicLit)
					if !ok || lit.Kind != token.CHAR {
						continue
					}
					if c, ok := pass.Pkg.Info.Defs[name].(*types.Const); ok && !ks.set[c] {
						ks.set[c] = true
						ks.order = append(ks.order, c)
					}
				}
			}
		}
	}
	sort.Slice(ks.order, func(i, j int) bool { return ks.order[i].Pos() < ks.order[j].Pos() })
	return ks
}

// checkSwitch applies the exhaustiveness rule to one switch, if it is
// a demux switch (mentions a frame kind in its cases), and records
// which kinds its cases handle.
func checkSwitch(pass *Pass, kinds *frameKindSet, sw *ast.SwitchStmt, handled map[*types.Const]bool, caseIdents map[*ast.Ident]bool) {
	local := map[*types.Const]bool{}
	hasDefault, defaultRejects := false, false
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			defaultRejects = len(cc.Body) > 0
			continue
		}
		for _, e := range cc.List {
			ast.Inspect(e, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if c, ok := pass.Pkg.Info.Uses[id].(*types.Const); ok && kinds.set[c] {
					caseIdents[id] = true
					local[c] = true
					handled[c] = true
				}
				return true
			})
		}
	}
	if len(local) == 0 {
		return // not a demux switch
	}
	var missing []string
	for _, c := range kinds.order {
		if !local[c] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	switch {
	case !hasDefault:
		pass.Reportf(sw.Pos(), "demux switch does not handle frame kind(s) %s and has no rejecting default",
			strings.Join(missing, ", "))
	case !defaultRejects:
		pass.Reportf(sw.Pos(), "demux switch silently ignores frame kind(s) %s: its default case is empty; reject unexpected frames explicitly",
			strings.Join(missing, ", "))
	}
}
