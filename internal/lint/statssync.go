package lint

import (
	"go/ast"
	"go/types"
)

// StatsSync keeps obs.QueryStats honest: a counter added to the struct
// but forgotten in Add silently under-merges parallel extraction; one
// forgotten in Counters AND String is invisible to golden tests and
// logs; a duration missing from StageTime AND String can never be
// attributed. The cluster side has the same drift risk: the
// coordinator's trailer merge must set every field, or remote stats
// silently drop on the floor. The analyzer checks, in the obs package:
//
//   - every QueryStats field is referenced in Add;
//   - every counter (integer) field is referenced in Counters or
//     String;
//   - every duration field is attributed in StageTime (String alone is
//     not enough: per-stage queries like the cluster trailer merge and
//     the stage breakdown in logs read StageTime, not the prose);
//
// and in the cluster package: at least one obs.QueryStats composite
// literal (the trailer merge) sets every field.
var StatsSync = &Analyzer{
	Name: "statssync",
	Doc:  "obs.QueryStats fields appear in Add, Counters/String (or StageTime), and the cluster trailer merge",
	Run:  runStatsSync,
}

func runStatsSync(pass *Pass) error {
	switch pass.Pkg.Name {
	case "obs":
		checkObsMethods(pass)
	case "cluster":
		checkClusterMerge(pass)
	}
	return nil
}

// queryStatsType finds the QueryStats named type in scope (obs side) or
// returns nil.
func queryStatsType(pkg *types.Package) (*types.Named, *types.Struct) {
	obj := pkg.Scope().Lookup("QueryStats")
	if obj == nil {
		return nil, nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

func isDurationType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

func checkObsMethods(pass *Pass) {
	named, st := queryStatsType(pass.Pkg.Types)
	if named == nil {
		return
	}
	// Which fields does each method body touch?
	refs := map[string]map[*types.Var]bool{}
	for name := range map[string]bool{"Add": true, "Counters": true, "String": true, "StageTime": true} {
		refs[name] = map[*types.Var]bool{}
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		set, ok := refs[m.Name()]
		if !ok {
			continue
		}
		src := pass.Loader.FuncSource(m)
		if src.Decl == nil || src.Decl.Body == nil {
			continue
		}
		ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s := src.Pkg.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok {
					set[v] = true
				}
			}
			return true
		})
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		if !refs["Add"][f] {
			pass.Reportf(f.Pos(), "QueryStats field %s is not merged in Add — parallel extraction drops it", f.Name())
		}
		if isDurationType(f.Type()) {
			if !refs["StageTime"][f] {
				pass.Reportf(f.Pos(), "QueryStats duration %s is not attributed in StageTime", f.Name())
			}
		} else if !refs["Counters"][f] && !refs["String"][f] {
			pass.Reportf(f.Pos(), "QueryStats counter %s appears in neither Counters nor String — invisible to tests and logs", f.Name())
		}
	}
}

// checkClusterMerge requires one QueryStats composite literal in the
// cluster package — the coordinator's trailer merge — to set every
// field. The most complete literal is the merge; smaller literals
// (zero values, tests' partial fixtures) are ignored.
func checkClusterMerge(pass *Pass) {
	type lit struct {
		node *ast.CompositeLit
		keys map[string]bool
	}
	var lits []lit
	var statsStruct *types.Struct
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[cl]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Name() != "QueryStats" ||
				named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "obs" {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			statsStruct = st
			keys := map[string]bool{}
			for _, el := range cl.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						keys[id.Name] = true
					}
				}
			}
			if len(cl.Elts) > 0 && len(keys) == 0 {
				// Positional literal sets everything.
				for i := 0; i < st.NumFields(); i++ {
					keys[st.Field(i).Name()] = true
				}
			}
			lits = append(lits, lit{cl, keys})
			return true
		})
	}
	if len(lits) == 0 || statsStruct == nil {
		return
	}
	best := lits[0]
	for _, l := range lits[1:] {
		if len(l.keys) > len(best.keys) {
			best = l
		}
	}
	for i := 0; i < statsStruct.NumFields(); i++ {
		f := statsStruct.Field(i)
		if f.Exported() && !best.keys[f.Name()] {
			pass.Reportf(best.node.Pos(),
				"trailer merge does not set QueryStats field %s — remote stats for it are dropped", f.Name())
		}
	}
}
