package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CloseCheck flags acquisitions of the project's closable resources —
// core.Rows (a streaming query), cache.File (a pinned handle) and net
// connections — that are provably neither closed nor handed off within
// the acquiring function. The analysis is deliberately conservative:
// returning the value, passing it to another call, sending it on a
// channel or storing it into a structure all count as ownership
// transfer, so only the unambiguous leak — a local that dies without
// Close — is reported.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "core.Rows, cache.File and net conns are closed or ownership-transferred on all paths",
	Run:  runCloseCheck,
}

func runCloseCheck(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCloses(pass, fd)
			}
		}
	}
	return nil
}

// trackedClosable reports whether t is one of the resource types the
// analyzer follows. Types declared under a testdata tree are tracked
// by shape (name + Close method) so the golden tests can define their
// own stand-ins.
func trackedClosable(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path, name := obj.Pkg().Path(), obj.Name()
	switch {
	case path == "datavirt/internal/core" && name == "Rows":
	case path == "datavirt/internal/cache" && name == "File":
	case path == "net" && (name == "Conn" || name == "TCPConn" || name == "UDPConn" || name == "UnixConn"):
	case strings.Contains(path, "testdata") && (name == "Rows" || name == "File" || name == "Conn"):
	default:
		return false
	}
	return true
}

func checkCloses(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	// Acquisitions: v := <call>, where v's type is tracked.
	type acquisition struct {
		v   *types.Var
		at  *ast.Ident
		src string
	}
	var acqs []acquisition
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id] // plain = assignment
			}
			v, ok := obj.(*types.Var)
			if !ok || !trackedClosable(v.Type()) {
				continue
			}
			src := "call"
			if fn := calleeFunc(info, call); fn != nil {
				src = fn.Name()
			}
			acqs = append(acqs, acquisition{v: v, at: id, src: src})
		}
		return true
	})

	for _, a := range acqs {
		if !leaks(info, fd, a.v, a.at) {
			continue
		}
		pass.Reportf(a.at.Pos(),
			"%s acquired from %s is never closed — add defer %s.Close() or transfer ownership",
			a.v.Name(), a.src, a.v.Name())
	}
}

// leaks reports whether v is neither closed nor transferred anywhere
// in the function after its defining identifier.
func leaks(info *types.Info, fd *ast.FuncDecl, v *types.Var, def *ast.Ident) bool {
	escaped := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Close() — including deferred.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == v {
					escaped = true
					return false
				}
			}
			// v passed (possibly wrapped) as an argument.
			for _, arg := range n.Args {
				if usesVarExpr(info, arg, v) {
					escaped = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesVarExpr(info, res, v) {
					escaped = true
					return false
				}
			}
		case *ast.SendStmt:
			if usesVarExpr(info, n.Value, v) {
				escaped = true
				return false
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if usesVarExpr(info, el, v) {
					escaped = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Stored into a field, map or slice element, or reassigned
			// to another variable that takes over ownership. (The
			// acquisition itself never trips this: its RHS is the call,
			// which cannot mention the variable it defines.)
			for _, rhs := range n.Rhs {
				if usesVarExpr(info, rhs, v) {
					escaped = true
					return false
				}
			}
		}
		return true
	})
	return !escaped
}

// usesVarExpr reports whether expr mentions v, but not when expr IS
// the defining use inside its own acquisition (handled by caller
// ordering: acquisitions are RHS calls, which cannot mention v).
func usesVarExpr(info *types.Info, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == v) {
			found = true
		}
		return true
	})
	return found
}
