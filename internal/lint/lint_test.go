package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"datavirt/internal/lint"
)

// One loader for every golden test: the source importer type-checks a
// good chunk of the standard library, so sharing its memoized state
// keeps the suite fast.
var (
	loaderOnce sync.Once
	sharedL    *lint.Loader
	moduleDir  string
	loaderErr  error
)

func loader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		abs, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loaderErr = err
			return
		}
		moduleDir = abs
		sharedL = lint.NewLoader(abs, "datavirt")
	})
	if sharedL == nil {
		t.Fatalf("loader init: %v", loaderErr)
	}
	return sharedL
}

// Golden-test expectations live in the testdata sources as
//
//	expr // want "substring" ["substring" ...]
//
// matched against diagnostics on the same line, or
//
//	// want-below "substring"
//
// matched against the following line (for directive comments that
// would swallow an inline want).
var (
	wantRE = regexp.MustCompile(`// want(-below)?((?:\s+"(?:[^"\\]|\\.)*")+)`)
	strRE  = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func parseWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string][]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			ln := i + 1
			if m[1] == "-below" {
				ln = i + 2
			}
			key := fmt.Sprintf("%s:%d", e.Name(), ln)
			for _, q := range strRE.FindAllString(m[2], -1) {
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want string %s: %v", key, q, err)
				}
				wants[key] = append(wants[key], s)
			}
		}
	}
	return wants
}

// runGolden loads internal/lint/testdata/src/<rel>, runs the given
// analyzers over it and diffs the diagnostics against the package's
// want comments: every diagnostic must be wanted, every want matched.
func runGolden(t *testing.T, analyzers []*lint.Analyzer, rel string) {
	t.Helper()
	l := loader(t)
	dir := filepath.Join(moduleDir, "internal", "lint", "testdata", "src", filepath.FromSlash(rel))
	importPath := "datavirt/internal/lint/testdata/src/" + rel
	pkg, err := l.Load(dir, importPath)
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	diags, err := lint.Run(l, pkg, analyzers)
	if err != nil {
		t.Fatalf("run %s: %v", rel, err)
	}

	wants := parseWants(t, dir)
	used := map[string][]bool{}
	for k, ws := range wants {
		used[k] = make([]bool, len(ws))
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)
		matched := false
		for i, w := range wants[key] {
			if !used[key][i] && strings.Contains(d.Message, w) {
				used[key][i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", key, d.Message, d.Analyzer)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if !used[k][i] {
				t.Errorf("missing diagnostic at %s: want message containing %q", k, w)
			}
		}
	}
}

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, []*lint.Analyzer{lint.CtxFlow}, "ctxflow")
}

func TestLockIOGolden(t *testing.T) {
	runGolden(t, []*lint.Analyzer{lint.LockIO}, "lockio")
}

func TestStatsSyncGoldenObs(t *testing.T) {
	runGolden(t, []*lint.Analyzer{lint.StatsSync}, "statssync/obs")
}

func TestStatsSyncGoldenCluster(t *testing.T) {
	runGolden(t, []*lint.Analyzer{lint.StatsSync}, "statssync/cluster")
}

func TestCloseCheckGolden(t *testing.T) {
	runGolden(t, []*lint.Analyzer{lint.CloseCheck}, "closecheck")
}

func TestSuppressGolden(t *testing.T) {
	runGolden(t, []*lint.Analyzer{lint.LockIO, lint.IgnoreReason}, "suppress")
}

// The three concurrency-contract analyzers pair with IgnoreReason so
// their suppression cases also prove the directives are well-formed.

func TestGuardedByGolden(t *testing.T) {
	runGolden(t, []*lint.Analyzer{lint.GuardedBy, lint.IgnoreReason}, "guardedby")
}

func TestGoLifeGolden(t *testing.T) {
	runGolden(t, []*lint.Analyzer{lint.GoLife, lint.IgnoreReason}, "golife")
}

func TestFrameProtoGolden(t *testing.T) {
	runGolden(t, []*lint.Analyzer{lint.FrameProto, lint.IgnoreReason}, "frameproto")
}

// TestTreeClean is the regression gate dvlint enforces in CI, repeated
// here so `go test ./...` catches violations too: the full analyzer
// suite must be silent on every package of the module.
func TestTreeClean(t *testing.T) {
	l := loader(t)
	dirs, err := lint.ModulePackageDirs(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range dirs {
		importPath := "datavirt"
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(filepath.Join(moduleDir, rel), importPath)
		if err != nil {
			t.Fatalf("load %s: %v", importPath, err)
		}
		diags, err := lint.Run(l, pkg, lint.All())
		if err != nil {
			t.Fatalf("run %s: %v", importPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

func TestModulePackageDirsSkipsTestdata(t *testing.T) {
	loader(t) // sets moduleDir
	dirs, err := lint.ModulePackageDirs(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no package dirs found")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("testdata dir not skipped: %s", d)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}
