package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// suppression is one parsed //dvlint:ignore directive.
type suppression struct {
	file     string
	line     int
	analyzer string
	reason   string
}

const ignorePrefix = "//dvlint:ignore"

// parseSuppressions collects every //dvlint:ignore directive in the
// package, well-formed or not (the reason may be empty; ignorereason
// flags that separately, while the suppression still applies so a
// missing reason produces exactly one diagnostic, not two).
func parseSuppressions(fset *token.FileSet, pkg *Package) []suppression {
	var out []suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				s := suppression{
					file: fset.Position(c.Pos()).Filename,
					line: fset.Position(c.Pos()).Line,
				}
				if len(fields) > 0 {
					s.analyzer = fields[0]
					s.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// filterSuppressed drops diagnostics covered by a //dvlint:ignore for
// the same analyzer on the diagnostic's line or the line above.
// ignorereason findings are never suppressible: a suppression must not
// be able to excuse its own missing reason.
func filterSuppressed(fset *token.FileSet, pkg *Package, diags []Diagnostic) []Diagnostic {
	sups := parseSuppressions(fset, pkg)
	if len(sups) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != IgnoreReason.Name && suppressed(sups, d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func suppressed(sups []suppression, d Diagnostic) bool {
	for _, s := range sups {
		if s.file != d.Pos.Filename || s.analyzer != d.Analyzer {
			continue
		}
		if s.line == d.Pos.Line || s.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// IgnoreReason lints the suppression comments themselves: each must
// name a known analyzer and carry a non-empty reason, so every
// exception to an invariant is attributable.
var IgnoreReason = &Analyzer{
	Name: "ignorereason",
	Doc:  "every //dvlint:ignore names a known analyzer and carries a non-empty reason",
}

// Run is attached in init: runIgnoreReason validates analyzer names
// via ByName → All → IgnoreReason, which would otherwise be an
// initialization cycle.
func init() { IgnoreReason.Run = runIgnoreReason }

func runIgnoreReason(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checkIgnoreComment(pass, c)
			}
		}
	}
	return nil
}

func checkIgnoreComment(pass *Pass, c *ast.Comment) {
	if !strings.HasPrefix(c.Text, ignorePrefix) {
		return
	}
	fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
	switch {
	case len(fields) == 0:
		pass.Reportf(c.Pos(), "dvlint:ignore names no analyzer (want //dvlint:ignore <analyzer> <reason>)")
	case ByName(fields[0]) == nil:
		pass.Reportf(c.Pos(), "dvlint:ignore names unknown analyzer %q", fields[0])
	case len(fields) == 1:
		pass.Reportf(c.Pos(), "dvlint:ignore %s has no reason — every suppression must say why", fields[0])
	}
}
