package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of this module from source,
// with no dependency on golang.org/x/tools (which the build
// environment does not provide). Standard-library imports resolve
// through the compiler's source importer (GOROOT source); imports
// within the module resolve recursively through the loader itself, so
// full type information — including cross-package function bodies for
// the interprocedural analyzers — is available offline.
type Loader struct {
	Fset *token.FileSet
	// ModulePath is the module's import-path prefix ("datavirt").
	ModulePath string
	// ModuleDir is the module root on disk.
	ModuleDir string

	std   types.Importer
	pkgs  map[string]*Package
	funcs map[*types.Func]FuncSource
}

// Package is one loaded package: syntax plus type information.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// FuncSource locates a function's declaration together with the
// package whose type information resolves its body.
type FuncSource struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(moduleDir, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		funcs:      map[*types.Func]FuncSource{},
	}
}

// Import implements types.Importer: module-internal paths load through
// the loader, everything else through the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.LoadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadPath loads the module package with the given import path.
func (l *Loader) LoadPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.Load(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path)
}

// Load parses and type-checks the package in dir under the given
// import path. Test files are skipped (their external dependencies may
// not be loadable and the invariants hold for shipping code). Results
// are memoized by import path.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return p, nil
	}
	l.pkgs[importPath] = nil // cycle guard

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}

	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Name:       tpkg.Name(),
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = p
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				l.funcs[fn] = FuncSource{Decl: fd, Pkg: p}
			}
		}
	}
	return p, nil
}

// FuncSource returns the declaration of a module function loaded so
// far (directly or as a dependency), or a zero FuncSource.
func (l *Loader) FuncSource(fn *types.Func) FuncSource { return l.funcs[fn] }

// goFilesIn lists the package's non-test Go files, sorted. Files whose
// //go:build constraint excludes the current platform are skipped —
// without this, platform-gated pairs (cache's mmap_unix.go and
// mmap_other.go) would collide as duplicate declarations.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !buildTagSatisfied(filepath.Join(dir, name)) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// buildTagSatisfied evaluates a file's //go:build line (the first one
// before the package clause) for the current GOOS/GOARCH. Files with
// no constraint, or an unparseable one, are included — the build is
// the authority; the loader only needs to avoid pulling in files the
// build would exclude here.
func buildTagSatisfied(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return true
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return true
		}
		return expr.Eval(buildTagMatches)
	}
	return true
}

// unixGOOS mirrors the platforms the "unix" build tag covers among
// those this module targets.
var unixGOOS = map[string]bool{
	"aix": true, "darwin": true, "dragonfly": true, "freebsd": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

func buildTagMatches(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH:
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	case "cgo":
		return false
	}
	// Release tags (go1.22, ...): the toolchain in use satisfies them.
	return strings.HasPrefix(tag, "go1")
}

// ModulePackageDirs walks the module for directories containing Go
// files, skipping testdata, hidden directories and the module's
// .claude/ tree. Returned paths are relative to root, "." first.
func ModulePackageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			base := filepath.Base(path)
			if path != root && (strings.HasPrefix(base, ".") || base == "testdata" || base == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			seen[rel] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
