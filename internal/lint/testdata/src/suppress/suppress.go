// Package cache seeds the suppression golden tests: one legitimate
// //dvlint:ignore silencing a lockio finding, plus the three malformed
// directive shapes ignorereason flags. A "// want-below" comment pins
// the expectation to the directive line beneath it (the directive
// comment itself would swallow an inline want).
package cache

import (
	"os"
	"sync"
)

type box struct {
	mu sync.Mutex
}

// Warm reads the seed file under the lock on purpose: it runs during
// construction, before any concurrent reader exists.
func (b *box) Warm(path string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//dvlint:ignore lockio warm runs before any reader can contend
	return os.ReadFile(path)
}

// want-below "names no analyzer"
//dvlint:ignore

// want-below "unknown analyzer \"nosuch\""
//dvlint:ignore nosuch the analyzer name is misspelled here

// want-below "has no reason"
//dvlint:ignore lockio
