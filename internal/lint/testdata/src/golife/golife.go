// Package glx seeds the golife golden tests: goroutines with and
// without a provable termination path — the ctx.Done select idiom, the
// break-inside-select trap, WaitGroup registration, bounded range
// loops, named-callee resolution, dynamic function values, and
// suppression.
package glx

import (
	"context"
	"sync"
)

// SpawnForever leaks: the loop has no escape.
func SpawnForever(ch chan int) {
	go func() { // want "goroutine has no provable termination path"
		for {
			<-ch
		}
	}()
}

// SpawnDone is the canonical ctx.Done select-and-return shape.
func SpawnDone(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
}

// SpawnBreakInSelect looks like SpawnDone but the unlabeled break only
// exits the select — the loop never ends.
func SpawnBreakInSelect(ctx context.Context, ch chan int) {
	go func() { // want "goroutine has no provable termination path"
		for {
			select {
			case <-ctx.Done():
				break
			case <-ch:
			}
		}
	}()
}

// SpawnLabeled escapes the loop through a labeled break.
func SpawnLabeled(ctx context.Context, ch chan int) {
	go func() {
	drain:
		for {
			select {
			case <-ctx.Done():
				break drain
			case <-ch:
			}
		}
	}()
}

// SpawnWG spins forever but is WaitGroup-registered: a leak hangs
// Wait in tests instead of vanishing.
func SpawnWG(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			<-ch
		}
	}()
}

// SpawnRange is bounded: the range ends when the channel closes.
func SpawnRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// server exercises named-callee resolution for `go s.method()`.
type server struct {
	done chan struct{}
	in   chan int
}

// readLoop escapes via the done channel.
func (s *server) readLoop() {
	for {
		select {
		case <-s.done:
			return
		case <-s.in:
		}
	}
}

// spin never escapes.
func (s *server) spin() {
	for {
		<-s.in
	}
}

// Start resolves readLoop's body and finds the escape.
func (s *server) Start() {
	go s.readLoop()
}

// StartBad resolves spin's body and finds none.
func (s *server) StartBad() {
	go s.spin() // want "goroutine has no provable termination path"
}

// SpawnDynamic cannot be proven: the function value is opaque.
func SpawnDynamic(f func()) {
	go f() // want "cannot be proven to terminate"
}

// SpawnSuppressed documents why its opaque spawn is acceptable.
func SpawnSuppressed(f func()) {
	//dvlint:ignore golife f is the caller's bounded driver closure
	go f()
}
