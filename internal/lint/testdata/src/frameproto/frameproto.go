// Package cluster seeds the frameproto golden tests (the analyzer
// gates on the package name). The kind set derives from the frame*
// character constants: frameOrphan is produced but never demuxed,
// frameGhost is demuxed but never produced, and the three switches
// cover the exhaustive, defaultless, and silent-default shapes.
package cluster

import "fmt"

const (
	frameHello  = 'H'
	frameData   = 'D'
	frameEnd    = 'E'
	frameOrphan = 'O' // want "frame kind frameOrphan is not handled by any demux switch"
	frameGhost  = 'G' // want "frame kind frameGhost has no encode site"

	frameHeaderLen = 9 // sized constant, not a kind
)

// Encode sites: everything except frameGhost is produced somewhere
// outside a case clause.
func encodeHello() byte  { return frameHello }
func encodeData() byte   { return frameData }
func encodeEnd() byte    { return frameEnd }
func encodeOrphan() byte { return frameOrphan }

// header pads a frame to the wire layout.
func header(kind byte) [frameHeaderLen]byte {
	var h [frameHeaderLen]byte
	h[0] = kind
	return h
}

// Demux misses frameOrphan but rejects it explicitly, which is fine.
func Demux(k byte) error {
	switch k {
	case frameHello:
	case frameData:
	case frameEnd:
	case frameGhost:
	default:
		return fmt.Errorf("unexpected frame %q", k)
	}
	return nil
}

// DemuxNoDefault drops three kinds on the floor with no default.
func DemuxNoDefault(k byte) bool {
	switch k { // want "demux switch does not handle frame kind"
	case frameHello:
		return true
	case frameData:
		return true
	}
	return false
}

// DemuxSilent has a default, but an empty one: unexpected frames are
// silently ignored instead of rejected.
func DemuxSilent(k byte) {
	switch k { // want "demux switch silently ignores frame kind"
	case frameHello:
	default:
	}
}

// DemuxPartial is a probe that only classifies hello frames; the
// suppression records why non-exhaustiveness is intended.
func DemuxPartial(k byte) bool {
	//dvlint:ignore frameproto probe only classifies hello frames, the caller rejects the rest
	switch k {
	case frameHello:
		return true
	}
	return false
}
