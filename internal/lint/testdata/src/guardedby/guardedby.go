// Package gbx seeds the guardedby golden tests: locked and unlocked
// accesses, RWMutex read/write asymmetry, pointer escape, constructor
// freshness, cross-struct guards, the callers-hold-the-lock idiom, the
// annotation-completeness (inference) check, suppression, and the
// malformed-annotation reports.
package gbx

import "sync"

// counter exercises the basic discipline plus inference: total is
// de-facto guarded (every access holds mu, with a write) but carries
// no annotation, so the completeness check demands one.
type counter struct {
	mu    sync.Mutex
	n     int //dvlint:guardedby mu
	total int // want "field counter.total is always accessed with mu held"
}

// NewCounter writes without the lock, legally: the object is freshly
// constructed and not shared yet.
func NewCounter() *counter {
	c := &counter{}
	c.n = 41
	c.n++
	return c
}

// Inc holds the lock across both writes.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.total++
	c.mu.Unlock()
}

// Get uses the defer-unlock idiom; the lock stays held to the return.
func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// BadInc writes without any lock.
func (c *counter) BadInc() {
	c.n++ // want "write to counter.n without holding mu"
}

// BadGet reads without any lock.
func (c *counter) BadGet() int {
	return c.n // want "read of counter.n without holding mu"
}

// Racy only sometimes locks: the definitely-held intersection across
// the two paths is empty at the write.
func (c *counter) Racy(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want "write to counter.n without holding mu"
	if b {
		c.mu.Unlock()
	}
}

// Leak hands out the field's address; accesses through the alias would
// evade the lock entirely.
func Leak(c *counter) *int {
	return &c.n // want "leaks a //dvlint:guardedby field by pointer"
}

// Snapshot documents why its lock-free read is safe.
func (c *counter) Snapshot() int {
	//dvlint:ignore guardedby snapshot runs before any concurrent writer starts
	return c.n
}

// table exercises the RWMutex asymmetry: RLock suffices for reads,
// writes need the write lock.
type table struct {
	rw sync.RWMutex
	m  map[string]int //dvlint:guardedby rw
}

// Lookup reads under the read lock.
func (t *table) Lookup(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// Store writes under the write lock.
func (t *table) Store(k string, v int) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.m[k] = v
}

// Drop mutates via the delete builtin, under the write lock.
func (t *table) Drop(k string) {
	t.rw.Lock()
	defer t.rw.Unlock()
	delete(t.m, k)
}

// BadStore writes under only the read lock.
func (t *table) BadStore(k string, v int) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.m[k] = v // want "write to table.m without holding rw"
}

// BadDrop deletes with no lock at all; delete mutates the map, so it
// is classified as a write.
func (t *table) BadDrop(k string) {
	delete(t.m, k) // want "write to table.m without holding rw"
}

// gauge exercises the depth-bounded callers-hold check: addLocked is
// clean because its every call site holds the lock, bumpUnsafe is not.
type gauge struct {
	mu sync.Mutex
	v  int //dvlint:guardedby mu
}

// addLocked requires g.mu held; both callers satisfy that.
func (g *gauge) addLocked(d int) {
	g.v += d
}

// Add is the locked entry point.
func (g *gauge) Add(d int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addLocked(d)
}

// Reset also reaches addLocked under the lock.
func (g *gauge) Reset() {
	g.mu.Lock()
	g.addLocked(-g.v)
	g.mu.Unlock()
}

// bumpUnsafe skips the lock and one caller reaches it unlocked, so the
// callers-hold justification fails.
func (g *gauge) bumpUnsafe() {
	g.v++ // want "write to gauge.v without holding mu"
}

// Touch calls bumpUnsafe without the lock.
func (g *gauge) Touch() {
	g.bumpUnsafe()
}

// owner/item exercise the cross-struct Type.field spec.
type owner struct {
	mu    sync.Mutex
	items []*item
}

type item struct {
	val int //dvlint:guardedby owner.mu
}

// Sum reads every item under the owning lock.
func (o *owner) Sum() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := 0
	for _, it := range o.items {
		s += it.val
	}
	return s
}

// Peek reads an item with no lock in sight.
func Peek(it *item) int {
	return it.val // want "read of item.val without holding owner.mu"
}

// holder exercises the method-call-through-guarded-field rule: the
// receiver may be mutated, so the call counts as a write.
type ring struct{ at int }

func (r *ring) Spin() { r.at++ }

type holder struct {
	mu sync.Mutex
	r  ring //dvlint:guardedby mu
}

// Turn spins under the lock.
func (h *holder) Turn() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.r.Spin()
}

// BadTurn spins without it.
func (h *holder) BadTurn() {
	h.r.Spin() // want "write to holder.r without holding mu"
}

// badspec carries the two malformed-annotation shapes.
type badspec struct {
	mu sync.Mutex
	a  int //dvlint:guardedby nosuch // want "badspec has no sync.Mutex/RWMutex field nosuch"
	b  int //dvlint:guardedby Missing.mu // want "no type Missing in this package"
}
