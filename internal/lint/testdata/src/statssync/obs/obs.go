// Package obs seeds the statssync golden tests: a QueryStats stand-in
// with two drifted fields (one counter, one duration) and two healthy
// ones.
package obs

import "time"

// QueryStats mirrors the real per-query stats struct.
type QueryStats struct {
	RowsRead int64         // merged and surfaced: healthy
	BadSkew  int64         // want "not merged in Add" "appears in neither Counters nor String"
	WaitTime time.Duration // merged and attributed: healthy
	BadTime  time.Duration // want "not merged in Add" "is not attributed in StageTime"
	LogTime  time.Duration // want "is not attributed in StageTime"

	// BlocksSkipped stands in for a data-skipping counter surfaced via
	// String rather than Counters: healthy obs-side, but the cluster
	// fixture's trailer merge forgets it.
	BlocksSkipped int64

	hidden int64 // unexported: out of scope
}

// Add merges another stats block into s.
func (s *QueryStats) Add(o *QueryStats) {
	s.RowsRead += o.RowsRead
	s.WaitTime += o.WaitTime
	s.LogTime += o.LogTime
	s.BlocksSkipped += o.BlocksSkipped
	s.hidden += o.hidden
}

// Counters exposes the integer counters.
func (s *QueryStats) Counters() map[string]int64 {
	return map[string]int64{"rows_read": s.RowsRead}
}

// String renders the stats for logs. Mentioning LogTime here does not
// excuse it from StageTime: prose is not queryable per stage. For the
// counter BlocksSkipped, though, String is a valid surface.
func (s *QueryStats) String() string {
	out := "stats " + s.LogTime.String()
	if s.BlocksSkipped > 0 {
		out += " skipping"
	}
	return out
}

// StageTime attributes time to pipeline stages.
func (s *QueryStats) StageTime() time.Duration { return s.WaitTime }
