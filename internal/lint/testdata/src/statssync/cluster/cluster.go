// Package cluster seeds the cluster side of the statssync golden
// tests: the most complete obs.QueryStats literal stands in for the
// coordinator's trailer merge and forgets one field.
package cluster

import obs "datavirt/internal/lint/testdata/src/statssync/obs"

// merge rebuilds remote stats from a trailer, dropping BadTime and the
// data-skipping counter BlocksSkipped.
func merge(rows, skew int64) obs.QueryStats {
	return obs.QueryStats{ // want "does not set QueryStats field BadTime" "does not set QueryStats field BlocksSkipped"
		RowsRead: rows,
		BadSkew:  skew,
		WaitTime: 0,
		LogTime:  0,
	}
}

// zero is a smaller literal the analyzer must ignore when picking the
// merge site.
func zero() obs.QueryStats { return obs.QueryStats{} }
