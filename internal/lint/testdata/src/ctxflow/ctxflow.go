// Package core seeds the ctxflow golden tests: the analyzer applies to
// packages named core/extractor/cluster, so this stand-in exercises
// every rule without touching the real tree.
package core

import (
	"context"
	"os"
)

// RunContext forwards its context (good).
func RunContext(ctx context.Context, x int) error {
	return ctx.Err()
}

// Run is the allowed shim shape: exported, single return, delegating
// the fresh context to the *Context variant (good).
func Run(x int) error { return RunContext(context.Background(), x) }

// SpawnContext spawns goroutines under its caller's context (good).
func SpawnContext(ctx context.Context) {
	go func() { <-ctx.Done() }()
}

// goodSpawn is unexported; the spawn rule applies to the public API
// boundary only (good).
func goodSpawn() { go func() {}() }

// BadSpawn spawns goroutines without accepting a context.
func BadSpawn() { // want "spawns goroutines but has no context.Context parameter"
	go goodSpawn()
}

// BadIO performs blocking I/O without accepting a context.
func BadIO(path string) ([]byte, error) { // want "performs blocking I/O"
	return os.ReadFile(path)
}

// BadBackground manufactures a fresh context below the API boundary
// instead of delegating in shim shape.
func BadBackground(x int) error {
	ctx := context.Background() // want "below the public API boundary"
	return RunContext(ctx, x)
}

// BadUnforwarded accepts a context and silently drops it, breaking
// cancellation for everything downstream.
func BadUnforwarded(ctx context.Context, x int) error { // want "never forwarded"
	return RunContext(context.TODO(), x)
}
