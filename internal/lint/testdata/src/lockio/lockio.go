// Package cache seeds the lockio golden tests: the analyzer applies to
// packages named cache/core, so this stand-in exercises direct,
// interprocedural, dynamic and interface-typed blocking under a lock.
package cache

import (
	"os"
	"sync"
)

// File mirrors the real handle cache's file-like interface.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	Close() error
}

type shard struct {
	mu   sync.Mutex
	m    map[string][]byte
	f    File
	open func(path string) (File, error)
	ch   chan int
}

// BadOpenUnderLock opens a file while the shard lock is held.
func (s *shard) BadOpenUnderLock(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.Open(path) // want "call to os.Open while holding s.mu"
	if err != nil {
		return err
	}
	return f.Close() // want "call to (*os.File).Close while holding s.mu"
}

// BadRecvUnderLock waits on a channel while the shard lock is held.
func (s *shard) BadRecvUnderLock() int {
	s.mu.Lock()
	v := <-s.ch // want "channel receive while holding s.mu"
	s.mu.Unlock()
	return v
}

// readAll is the module-internal hop for the interprocedural case.
func readAll(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// BadInterproc blocks two call levels down.
func (s *shard) BadInterproc(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := readAll(path) // want "which blocks"
	s.m[path] = b
	return err
}

// BadDynamicOpen calls an injected open callback under the lock; the
// callee is unresolvable statically and presumed blocking by name.
func (s *shard) BadDynamicOpen(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.open(path) // want "presumed blocking by name"
	s.f = f
	return err
}

// BadIfaceClose closes a file-like interface under the lock.
func (s *shard) BadIfaceClose() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close() // want "file-like interface File"
}

// BadFallthrough releases the lock only on the hit path; the miss path
// reaches the read with the lock still (possibly) held.
func (s *shard) BadFallthrough(path string) ([]byte, error) {
	s.mu.Lock()
	if b, ok := s.m[path]; ok {
		s.mu.Unlock()
		return b, nil
	}
	return os.ReadFile(path) // want "call to os.ReadFile while holding s.mu"
}

// GoodHoist does the blocking work outside the critical section.
func (s *shard) GoodHoist(path string) ([]byte, error) {
	s.mu.Lock()
	b, ok := s.m[path]
	s.mu.Unlock()
	if ok {
		return b, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.m[path] = data
	s.mu.Unlock()
	return data, nil
}

// GoodBranches unlocks on every path before blocking.
func (s *shard) GoodBranches(path string) ([]byte, error) {
	s.mu.Lock()
	if b, ok := s.m[path]; ok {
		s.mu.Unlock()
		return b, nil
	}
	s.mu.Unlock()
	return os.ReadFile(path)
}

// GoodGoroutine blocks only inside a spawned goroutine, which does not
// hold the caller's lock.
func (s *shard) GoodGoroutine(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		b, _ := os.ReadFile(path)
		_ = b
	}()
}
