// Package client seeds the closecheck golden tests. Closecheck runs on
// every package and, under testdata, tracks types named Rows/File/Conn
// by shape, so these local stand-ins behave like core.Rows/cache.File.
package client

import "errors"

// Rows is a closable result cursor, shaped like core.Rows.
type Rows struct{ done bool }

// Next advances the cursor.
func (r *Rows) Next() bool { return !r.done }

// Close releases the cursor.
func (r *Rows) Close() error { return nil }

func query(ok bool) (*Rows, error) {
	if !ok {
		return nil, errors.New("no rows")
	}
	return &Rows{}, nil
}

// BadLeak drops the rows without closing them on any path.
func BadLeak(ok bool) error {
	rows, err := query(ok) // want "never closed"
	if err != nil {
		return err
	}
	for rows.Next() {
	}
	return nil
}

// GoodDefer closes via defer.
func GoodDefer(ok bool) error {
	rows, err := query(ok)
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() {
	}
	return nil
}

// GoodReturn transfers ownership to the caller.
func GoodReturn(ok bool) (*Rows, error) {
	rows, err := query(ok)
	return rows, err
}

// GoodHandoff transfers ownership to a consumer that closes.
func GoodHandoff(ok bool) error {
	rows, err := query(ok)
	if err != nil {
		return err
	}
	return drain(rows)
}

func drain(r *Rows) error {
	defer r.Close()
	for r.Next() {
	}
	return nil
}

type holder struct{ r *Rows }

// GoodStore parks the rows in a struct; ownership moved, not leaked.
func GoodStore(h *holder, ok bool) {
	h.r, _ = query(ok)
}
