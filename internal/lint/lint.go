// Package lint is a project-specific static-analysis suite encoding
// this codebase's invariants, in the style of golang.org/x/tools/go/
// analysis but built purely on the standard library's go/ast, go/parser
// and go/types (the container has no module cache, so x/tools is not
// available; see Loader for how type information is obtained offline).
//
// The analyzers:
//
//	ctxflow    — context discipline in internal/core, internal/extractor
//	             and internal/cluster: exported functions that spawn
//	             goroutines or do direct I/O must accept a
//	             context.Context; a declared context parameter must be
//	             forwarded; no context.Background()/context.TODO() below
//	             the public API boundary except in single-return shims
//	             delegating to a *Context variant.
//	lockio     — no blocking call (file/net I/O, channel operation,
//	             WaitGroup.Wait, one level of module-internal calls
//	             that lead to one) while holding a mutex in
//	             internal/cache or internal/core.
//	statssync  — obs.QueryStats counter hygiene: every field must be
//	             merged in Add and surfaced in Counters/String (or
//	             StageTime for durations), and the cluster trailer
//	             merge must set every field.
//	closecheck — values of the closable resource types (core.Rows,
//	             cache.File, net.Conn) must be closed, transferred or
//	             returned on every acquisition.
//	guardedby  — every access to a struct field annotated
//	             //dvlint:guardedby <mutexField> holds the named mutex
//	             (write lock for writes, read lock sufficing for
//	             reads), with pointer-escape reporting and a
//	             depth-bounded callers-hold-the-lock check.
//	golife     — every go statement has a provable termination path:
//	             a done-channel select/return, a bounded loop, or
//	             WaitGroup registration.
//	frameproto — the cluster wire protocol's frame kinds (derived from
//	             the frame* character constants) are each handled or
//	             explicitly rejected by every demux switch, and each
//	             has matched encode/decode sites.
//	ignorereason — every //dvlint:ignore suppression names an analyzer
//	             and carries a non-empty reason.
//
// Diagnostics can be suppressed with a comment on the same line or the
// line above:
//
//	//dvlint:ignore <analyzer> <reason>
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //dvlint:ignore.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports the analyzer's findings on one package via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, LockIO, StatsSync, CloseCheck, GuardedBy, GoLife, FrameProto, IgnoreReason}
}

// ByName resolves an analyzer from the suite, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries one analyzer's view of one loaded package.
type Pass struct {
	Analyzer *Analyzer
	// Loader gives access to cross-package declarations (every
	// dependency loaded so far), for the interprocedural checks.
	Loader *Loader
	// Pkg is the package under analysis.
	Pkg *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Loader.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the conventional "file:line:col: message (analyzer)".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics (suppressions applied), sorted by position.
func Run(l *Loader, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Loader: l, Pkg: pkg, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	diags = filterSuppressed(l.Fset, pkg, diags)
	for i := range diags {
		diags[i].File = diags[i].Pos.Filename
		diags[i].Line = diags[i].Pos.Line
		diags[i].Col = diags[i].Pos.Column
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return diags, nil
}
