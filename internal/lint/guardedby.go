package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GuardedBy enforces //dvlint:guardedby annotations on struct fields:
// every read of an annotated field must hold the named mutex (at least
// a read lock when it is a sync.RWMutex), every write must hold the
// write lock, and the field must not leak by pointer — an alias would
// let later accesses evade the lock entirely. The annotation goes on
// the field's line (or its doc comment):
//
//	mu      sync.Mutex
//	entries map[key]*entry //dvlint:guardedby mu
//
// A field guarded by another struct's mutex names it as Type.field:
//
//	pending []item //dvlint:guardedby nodeSession.mu
//
// Checking is flow-sensitive within a function (definitely-held
// intersection across branches) and depth-bounded interprocedural for
// the callers-hold-the-lock idiom: an unexported function that touches
// guarded fields without locking is clean when every one of its call
// sites (followed up to interprocDepth levels) holds the lock.
// Accesses rooted at a freshly constructed local (x := &T{...}) are
// exempt — the object is not yet shared. As a completeness check, an
// unannotated field of a struct that already carries annotations is
// flagged when every access holds one of the struct's declared locks
// and at least one is a write: it is de-facto guarded and should say
// so (or carry a //dvlint:ignore).
//
// Scope: annotations are collected from, and accesses checked in, the
// declaring package only; aliasing through map/slice values is not
// modeled, and lock identity is matched by owning type + field name,
// not per-instance.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "every access to a //dvlint:guardedby field holds the named mutex (write lock for writes); guarded fields must not leak by pointer",
	Run:  runGuardedBy,
}

const guardedPrefix = "//dvlint:guardedby"

// guardSpec ties one annotated struct field to the mutex guarding it.
type guardSpec struct {
	owner     *types.TypeName // struct declaring the guarded field
	fieldName string
	lockOwner *types.TypeName // struct holding the mutex (== owner unless Type.field spec)
	lockField string
	rw        bool // the mutex is a sync.RWMutex
}

// lockName renders the guard for messages, as written in the annotation.
func (g *guardSpec) lockName() string {
	if g.lockOwner == g.owner {
		return g.lockField
	}
	return g.lockOwner.Name() + "." + g.lockField
}

// guardSet is the package's parsed annotations.
type guardSet struct {
	byField   map[*types.Var]*guardSpec
	annotated map[*types.TypeName][]*guardSpec // structs with ≥1 annotated field
}

// heldLock is one mutex the walker knows is locked, identified by the
// struct type owning the mutex field (nil for local/package-level
// mutex variables, which can never guard an annotated field).
type heldLock struct {
	owner *types.TypeName
	field string
	write bool
}

// gbSite is one static call site of a package function, with the locks
// held when it is reached.
type gbSite struct {
	caller *types.Func
	held   []heldLock
}

// gbViolation is a tentative finding, pending the callers-hold check.
type gbViolation struct {
	pos    token.Pos
	spec   *guardSpec
	write  bool
	escape bool
	fn     *types.Func // enclosing declared function; nil in func literals
}

// gbAccess records one access to a field of an annotated struct, for
// the completeness (inference) check.
type gbAccess struct {
	write bool
	held  []heldLock
	fresh bool
}

type guardAnalysis struct {
	pass     *Pass
	guards   *guardSet
	sites    map[*types.Func][]gbSite
	viol     []gbViolation
	acc      map[*types.Var][]gbAccess
	accOwner map[*types.Var]*types.TypeName
}

func runGuardedBy(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards.byField) == 0 {
		return nil
	}
	a := &guardAnalysis{
		pass:     pass,
		guards:   guards,
		sites:    map[*types.Func][]gbSite{},
		acc:      map[*types.Var][]gbAccess{},
		accOwner: map[*types.Var]*types.TypeName{},
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			w := &guardWalker{a: a, fn: fn, held: map[string]heldLock{}, fresh: map[types.Object]bool{}}
			w.block(fd.Body.List)
			w.drainLits()
		}
	}
	a.finish()
	return nil
}

// collectGuards parses every //dvlint:guardedby annotation on struct
// fields of the package, reporting malformed ones in place.
func collectGuards(pass *Pass) *guardSet {
	gs := &guardSet{
		byField:   map[*types.Var]*guardSpec{},
		annotated: map[*types.TypeName][]*guardSpec{},
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, _ := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
				for _, field := range st.Fields.List {
					collectFieldGuard(pass, gs, tn, field)
				}
			}
		}
	}
	return gs
}

// collectFieldGuard parses the annotation, if any, on one struct field.
func collectFieldGuard(pass *Pass, gs *guardSet, tn *types.TypeName, field *ast.Field) {
	spec, pos, ok := guardAnnotation(field)
	if !ok {
		return
	}
	if tn == nil || len(field.Names) == 0 {
		pass.Reportf(pos, "dvlint:guardedby is only valid on a named struct field")
		return
	}
	lockOwner, lockField := tn, spec
	if dot := strings.IndexByte(spec, '.'); dot >= 0 {
		ownerName, f := spec[:dot], spec[dot+1:]
		obj, _ := pass.Pkg.Types.Scope().Lookup(ownerName).(*types.TypeName)
		if obj == nil {
			pass.Reportf(pos, "dvlint:guardedby %s: no type %s in this package", spec, ownerName)
			return
		}
		lockOwner, lockField = obj, f
	}
	rw, ok := mutexField(lockOwner, lockField)
	if !ok {
		pass.Reportf(pos, "dvlint:guardedby %s: %s has no sync.Mutex/RWMutex field %s",
			spec, lockOwner.Name(), lockField)
		return
	}
	for _, name := range field.Names {
		v, ok := pass.Pkg.Info.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		g := &guardSpec{owner: tn, fieldName: name.Name, lockOwner: lockOwner, lockField: lockField, rw: rw}
		gs.byField[v] = g
		gs.annotated[tn] = append(gs.annotated[tn], g)
	}
}

// guardAnnotation extracts the mutex spec from a field's trailing or
// doc comment: the first field after the directive; trailing prose is
// allowed as explanation.
func guardAnnotation(field *ast.Field) (spec string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, guardedPrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(c.Text, guardedPrefix))
			if len(fields) == 0 {
				return "", c.Pos(), false
			}
			return fields[0], c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// mutexField reports whether tn's struct type has a mutex field of the
// given name, and whether it is a sync.RWMutex.
func mutexField(tn *types.TypeName, name string) (rw, ok bool) {
	st, isStruct := tn.Type().Underlying().(*types.Struct)
	if !isStruct {
		return false, false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name || !isMutexType(f.Type()) {
			continue
		}
		t := f.Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			return n.Obj().Name() == "RWMutex", true
		}
	}
	return false, false
}

// guardWalker walks one function body in execution order, tracking the
// set of definitely-held locks.
type guardWalker struct {
	a     *guardAnalysis
	fn    *types.Func
	held  map[string]heldLock
	fresh map[types.Object]bool
	lits  []*ast.FuncLit
	skip  map[ast.Node]bool // selectors already classified (escape/write)
}

func (w *guardWalker) info() *types.Info { return w.a.pass.Pkg.Info }

// drainLits walks queued function literals as independent bodies with
// no locks held: they run when called, under whatever lock state the
// caller has then, which the walker cannot see.
func (w *guardWalker) drainLits() {
	for len(w.lits) > 0 {
		lit := w.lits[0]
		w.lits = w.lits[1:]
		lw := &guardWalker{a: w.a, fn: nil, held: map[string]heldLock{}, fresh: map[types.Object]bool{}}
		lw.block(lit.Body.List)
		w.lits = append(w.lits, lw.lits...)
	}
}

func (w *guardWalker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

func (w *guardWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if h, key, isLock, ok := w.lockOp(call); ok {
				if isLock {
					w.held[key] = h
				} else {
					delete(w.held, key)
				}
				return
			}
		}
		w.scan(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.scan(rhs)
		}
		for _, lhs := range s.Lhs {
			w.access(lhs, true)
		}
		if s.Tok == token.DEFINE && len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || !freshExpr(s.Rhs[i]) {
					continue
				}
				if obj := w.info().Defs[id]; obj != nil {
					w.fresh[obj] = true
				}
			}
		}
	case *ast.IncDecStmt:
		w.access(s.X, true)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the rest of the
		// body. Other deferred calls run at exit under unknown lock
		// state: a deferred literal is walked lock-free, a deferred
		// named call is neither checked nor counted as a call site.
		if _, _, isLock, ok := w.lockOp(s.Call); ok && !isLock {
			return
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		}
		for _, arg := range s.Call.Args {
			w.scan(arg) // defer arguments evaluate now
		}
	case *ast.GoStmt:
		// The goroutine starts with no locks held; a named callee is
		// recorded as a lock-free call site so the callers-hold check
		// cannot excuse it.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		} else if callee := calleeFunc(w.info(), s.Call); callee != nil && callee.Pkg() == w.a.pass.Pkg.Types {
			w.a.sites[callee] = append(w.a.sites[callee], gbSite{caller: w.fn})
		}
		for _, arg := range s.Call.Args {
			w.scan(arg)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scan(r)
		}
	case *ast.SendStmt:
		w.scan(s.Chan)
		w.scan(s.Value)
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.scan(s.Cond)
		thenExit := w.branch(s.Body.List)
		var exits []map[string]heldLock
		if thenExit != nil {
			exits = append(exits, thenExit)
		}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			if x := w.branch(e.List); x != nil {
				exits = append(exits, x)
			}
		case *ast.IfStmt:
			if x := w.branch([]ast.Stmt{e}); x != nil {
				exits = append(exits, x)
			}
		case nil:
			exits = append(exits, w.held) // the path that skipped the if
		}
		w.merge(exits)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.scan(s.Cond)
		}
		exits := []map[string]heldLock{}
		if x := w.branch(s.Body.List); x != nil {
			exits = append(exits, x)
		}
		if s.Cond != nil {
			exits = append(exits, w.held) // zero iterations
		}
		w.merge(exits)
	case *ast.RangeStmt:
		w.access(s.X, false)
		exits := []map[string]heldLock{w.held} // empty collection
		if x := w.branch(s.Body.List); x != nil {
			exits = append(exits, x)
		}
		w.merge(exits)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.scan(s.Tag)
		}
		w.clauses(s.Body.List, nil)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		w.clauses(s.Body.List, nil)
	case *ast.SelectStmt:
		w.clauses(nil, s.Body.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scan(v)
					}
				}
			}
		}
	}
}

// clauses analyzes switch/select bodies: each clause on a copy of the
// held set, merging the fall-through states by intersection. A switch
// without a default (and any select) may also fall through unchanged.
func (w *guardWalker) clauses(caseList []ast.Stmt, commList []ast.Stmt) {
	var exits []map[string]heldLock
	hasDefault := false
	for _, c := range caseList {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.scan(e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		if x := w.branch(cc.Body); x != nil {
			exits = append(exits, x)
		}
	}
	for _, c := range commList {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		body := cc.Body
		if cc.Comm != nil {
			body = append([]ast.Stmt{cc.Comm}, body...)
		}
		if x := w.branch(body); x != nil {
			exits = append(exits, x)
		}
	}
	if caseList != nil && !hasDefault {
		exits = append(exits, w.held)
	}
	w.merge(exits)
}

// branch walks a conditional body on a copy of the held set and returns
// its exit state, or nil when the body always transfers control away
// (so it does not constrain the fall-through state).
func (w *guardWalker) branch(stmts []ast.Stmt) map[string]heldLock {
	saved := w.held
	w.held = copyLocks(saved)
	w.block(stmts)
	exit := w.held
	w.held = saved
	if terminates(stmts) {
		return nil
	}
	return exit
}

// merge replaces the held set with the intersection of the given exit
// states: only locks definitely held on every fall-through path
// survive. No exits means the code after is unreachable; the state is
// left as-is.
func (w *guardWalker) merge(exits []map[string]heldLock) {
	if len(exits) == 0 {
		return
	}
	out := copyLocks(exits[0])
	for _, e := range exits[1:] {
		for k, h := range out {
			o, ok := e[k]
			if !ok {
				delete(out, k)
				continue
			}
			h.write = h.write && o.write
			out[k] = h
		}
	}
	w.held = out
}

func copyLocks(m map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// lockOp recognizes x.Lock/RLock/Unlock/RUnlock on a sync.Mutex or
// RWMutex and returns the held-lock descriptor and tracking key.
func (w *guardWalker) lockOp(call *ast.CallExpr) (h heldLock, key string, isLock, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return heldLock{}, "", false, false
	}
	var write bool
	switch sel.Sel.Name {
	case "Lock":
		isLock, write = true, true
	case "RLock":
		isLock, write = true, false
	case "Unlock", "RUnlock":
	default:
		return heldLock{}, "", false, false
	}
	tv, okT := w.info().Types[sel.X]
	if !okT || !isMutexType(tv.Type) {
		return heldLock{}, "", false, false
	}
	h = heldLock{write: write}
	if mx, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr); isSel {
		h.field = mx.Sel.Name
		if tvBase, okB := w.info().Types[mx.X]; okB {
			h.owner = namedTypeName(tvBase.Type)
		}
	} else if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
		h.field = id.Name
	}
	return h, lockKey(sel.X), isLock, true
}

// lockKey renders the mutex expression for the held map, extending
// exprString with index expressions (c.shards[i].mu).
func lockKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return lockKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return lockKey(e.X) + "[" + lockKey(e.Index) + "]"
	case *ast.StarExpr:
		return lockKey(e.X)
	case *ast.BasicLit:
		return e.Value
	}
	return "?"
}

// namedTypeName returns t's (deref'd) named type object, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// access classifies e as a write target: a selector writes the field, a
// map/slice element or dereference write mutates the container field.
func (w *guardWalker) access(e ast.Expr, write bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		w.field(e, write)
		w.markSkip(e)
		w.scan(e)
	case *ast.IndexExpr:
		w.access(e.X, write)
		w.scan(e.Index)
	case *ast.StarExpr:
		w.access(e.X, write)
	default:
		w.scan(e)
	}
}

// markSkip prevents scan from re-recording a selector the caller
// already classified (as a write or escape).
func (w *guardWalker) markSkip(n ast.Node) {
	if w.skip == nil {
		w.skip = map[ast.Node]bool{}
	}
	w.skip[n] = true
}

// scan visits an expression subtree recording read accesses, pointer
// escapes, call sites and write-classified special forms (delete on a
// guarded map, method calls through a guarded field).
func (w *guardWalker) scan(root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.lits = append(w.lits, n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					w.escape(sel)
				}
			}
		case *ast.SelectorExpr:
			if w.skip[n] {
				delete(w.skip, n)
			} else {
				w.field(n, false)
			}
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// call handles the write-classified call forms and records the call
// site for the interprocedural callers-hold check.
func (w *guardWalker) call(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
		// builtin delete mutates the map: a write to the container. (The
		// builtin resolves to *types.Builtin; a user-defined delete would
		// resolve to *types.Func and falls through to the call-site path.)
		if _, isBuiltin := w.info().Uses[id].(*types.Builtin); isBuiltin {
			if len(call.Args) > 0 {
				if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
					w.field(sel, true)
					w.markSkip(sel)
				}
			}
			return
		}
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// A method call through a guarded field (s.lru.MoveToFront)
		// may mutate it: classify the receiver as a write.
		if recv, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			if v, isVar := w.info().Uses[recv.Sel].(*types.Var); isVar && w.a.guards.byField[v] != nil {
				w.field(recv, true)
				w.markSkip(recv)
			}
		}
	}
	if callee := calleeFunc(w.info(), call); callee != nil && callee.Pkg() == w.a.pass.Pkg.Types {
		held := make([]heldLock, 0, len(w.held))
		for _, h := range w.held {
			held = append(held, h)
		}
		w.a.sites[callee] = append(w.a.sites[callee], gbSite{caller: w.fn, held: held})
	}
}

// field checks one selector access against the annotations and records
// it for the inference pass.
func (w *guardWalker) field(sel *ast.SelectorExpr, write bool) {
	v, ok := w.info().Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	sl := w.info().Selections[sel]
	if sl == nil || sl.Kind() != types.FieldVal {
		return
	}
	fresh := w.freshRoot(sel.X)
	if owner := namedTypeName(sl.Recv()); owner != nil && w.a.guards.annotated[owner] != nil {
		held := make([]heldLock, 0, len(w.held))
		for _, h := range w.held {
			held = append(held, h)
		}
		w.a.acc[v] = append(w.a.acc[v], gbAccess{write: write, held: held, fresh: fresh})
		w.a.accOwner[v] = owner
	}
	spec := w.a.guards.byField[v]
	if spec == nil || fresh {
		return
	}
	if holdsIn(heldList(w.held), spec, write) {
		return
	}
	w.a.viol = append(w.a.viol, gbViolation{pos: sel.Pos(), spec: spec, write: write, fn: w.fn})
}

// escape reports a guarded field whose address is taken.
func (w *guardWalker) escape(sel *ast.SelectorExpr) {
	v, ok := w.info().Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	spec := w.a.guards.byField[v]
	if spec == nil || w.freshRoot(sel.X) {
		return
	}
	w.markSkip(sel)
	w.a.viol = append(w.a.viol, gbViolation{pos: sel.Pos(), spec: spec, escape: true, fn: w.fn})
}

// freshRoot reports whether the access is rooted at a local freshly
// constructed in this function (x := &T{...} / T{} / new(T)): the
// object is not shared yet, so constructor writes need no lock.
func (w *guardWalker) freshRoot(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return w.fresh[w.info().Uses[x]]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// freshExpr reports whether e constructs a new object.
func freshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := ast.Unparen(e.X).(*ast.CompositeLit)
		return e.Op == token.AND && lit
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

func heldList(m map[string]heldLock) []heldLock {
	out := make([]heldLock, 0, len(m))
	for _, h := range m {
		out = append(out, h)
	}
	return out
}

// holdsIn reports whether the held set satisfies the spec's guard: the
// owning type + field must match, and a write needs the write lock.
func holdsIn(held []heldLock, spec *guardSpec, write bool) bool {
	for _, h := range held {
		if h.owner == spec.lockOwner && h.field == spec.lockField && (h.write || !write) {
			return true
		}
	}
	return false
}

// finish resolves tentative violations through the callers-hold check,
// reports the survivors, and runs the annotation-completeness pass.
func (a *guardAnalysis) finish() {
	type repKey struct {
		pos    token.Pos
		spec   *guardSpec
		escape bool
	}
	byPos := map[token.Pos]gbViolation{}
	for _, v := range a.viol {
		// Keep the strongest classification per position: escape >
		// write > read.
		old, seen := byPos[v.pos]
		if seen && (old.escape || (old.write && !v.escape)) {
			continue
		}
		byPos[v.pos] = v
	}
	keys := make([]token.Pos, 0, len(byPos))
	for p := range byPos {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	reported := map[repKey]bool{}
	for _, p := range keys {
		v := byPos[p]
		if !v.escape && v.fn != nil && a.justified(v.fn, v.spec, v.write, interprocDepth, map[*types.Func]bool{}) {
			continue
		}
		k := repKey{pos: v.pos, spec: v.spec, escape: v.escape}
		if reported[k] {
			continue
		}
		reported[k] = true
		name := v.spec.owner.Name() + "." + v.spec.fieldName
		switch {
		case v.escape:
			a.pass.Reportf(v.pos, "&%s leaks a //dvlint:guardedby field by pointer; accesses through the alias evade %s",
				name, v.spec.lockName())
		case v.write:
			a.pass.Reportf(v.pos, "write to %s without holding %s (write lock required; declared //dvlint:guardedby)",
				name, v.spec.lockName())
		default:
			a.pass.Reportf(v.pos, "read of %s without holding %s (declared //dvlint:guardedby)",
				name, v.spec.lockName())
		}
	}
	a.inferUnannotated()
}

// justified reports whether every call site of fn (followed up to depth
// levels through callers that themselves lack the lock) holds the
// spec's guard — the callers-hold-the-lock idiom for unexported
// helpers like pickStream/removeLocked. Exported functions are never
// justified: callers outside the package are invisible here.
func (a *guardAnalysis) justified(fn *types.Func, spec *guardSpec, write bool, depth int, seen map[*types.Func]bool) bool {
	if seen[fn] || fn.Exported() {
		return false
	}
	seen[fn] = true
	sites := a.sites[fn]
	if len(sites) == 0 {
		return false
	}
	for _, s := range sites {
		if holdsIn(s.held, spec, write) {
			continue
		}
		if depth > 0 && s.caller != nil && a.justified(s.caller, spec, write, depth-1, seen) {
			continue
		}
		return false
	}
	return true
}

// inferUnannotated flags de-facto guarded fields: an unannotated field
// of an already-annotated struct whose every (non-constructor) access
// holds one of the struct's declared locks, with at least one write —
// the annotation is missing, not the locking.
func (a *guardAnalysis) inferUnannotated() {
	type cand struct {
		v     *types.Var
		owner *types.TypeName
	}
	var cands []cand
	for v, owner := range a.accOwner {
		if a.guards.byField[v] == nil && !inferExempt(v.Type()) {
			cands = append(cands, cand{v, owner})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].v.Pos() < cands[j].v.Pos() })
	for _, c := range cands {
		for _, spec := range distinctLocks(a.guards.annotated[c.owner]) {
			allHeld, anyWrite := true, false
			for _, acc := range a.acc[c.v] {
				if acc.fresh {
					continue
				}
				if !holdsIn(acc.held, spec, acc.write) {
					allHeld = false
					break
				}
				if acc.write {
					anyWrite = true
				}
			}
			if allHeld && anyWrite {
				a.pass.Reportf(c.v.Pos(), "field %s.%s is always accessed with %s held; annotate //dvlint:guardedby %s (or suppress with a reason)",
					c.owner.Name(), c.v.Name(), spec.lockName(), spec.lockName())
				break
			}
		}
	}
}

// distinctLocks returns one spec per distinct guarding mutex.
func distinctLocks(specs []*guardSpec) []*guardSpec {
	var out []*guardSpec
	seen := map[string]bool{}
	for _, s := range specs {
		k := s.lockName()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// inferExempt excludes field types with their own synchronization
// story from the completeness check: sync/atomic primitives, channels
// and funcs.
func inferExempt(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		if pkg := n.Obj().Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
			return true
		}
		t = n.Underlying()
	}
	switch t.(type) {
	case *types.Chan, *types.Signature:
		return true
	}
	return false
}
