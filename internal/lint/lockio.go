package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockIO forbids blocking calls while holding a mutex in the cache and
// core packages: the sharded LRU and the service/plan-cache locks are
// hot, and an open/read/dial (or a channel wait) under them serializes
// every other query on the shard. Blocking is detected directly
// (os/net/time calls, channel operations, WaitGroup.Wait) and through
// up to three levels of module-internal calls, using the loader's
// cross-package function bodies.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "no blocking call (file/net I/O, channel op, Wait) while holding a mutex in internal/cache or internal/core",
	Run:  runLockIO,
}

var lockioPkgNames = map[string]bool{"cache": true, "core": true}

// interprocDepth bounds how many module-internal call levels the
// blocking classification follows.
const interprocDepth = 3

func runLockIO(pass *Pass) error {
	if !lockioPkgNames[pass.Pkg.Name] {
		return nil
	}
	bc := &blockClassifier{loader: pass.Loader, memo: map[*types.Func]string{}}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, bc: bc, held: map[string]token.Pos{}}
			w.block(fd.Body.List)
		}
	}
	return nil
}

// lockWalker walks a function body in execution order tracking which
// mutexes are held. Branch bodies are analyzed with a copy of the held
// set; a branch that falls through merges its exit state back by union
// ("possibly held" is enough to flag), while a terminating branch
// (return/branch/panic) leaves the fall-through state untouched.
type lockWalker struct {
	pass *Pass
	bc   *blockClassifier
	held map[string]token.Pos
}

func (w *lockWalker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, locked, ok := w.lockOp(s.X); ok {
			if locked {
				w.held[key] = s.Pos()
			} else {
				delete(w.held, key)
			}
			return
		}
		w.check(s.X)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the rest of the
		// function; any other deferred call runs after the body, when
		// the analysis no longer applies. Either way the deferred call
		// itself is not checked.
	case *ast.GoStmt:
		// The spawned goroutine does not block the lock holder.
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.check(s.Cond)
		w.branch(s.Body.List)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.branch(e.List)
		case *ast.IfStmt:
			w.branch([]ast.Stmt{e})
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.check(s.Cond)
		}
		w.branch(s.Body.List)
	case *ast.RangeStmt:
		w.check(s.X)
		w.branch(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.check(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		if len(w.held) > 0 {
			w.reportBlocked(s.Pos(), "select (channel wait)")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.SendStmt:
		if len(w.held) > 0 {
			w.reportBlocked(s.Pos(), "channel send")
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	default:
		w.check(s)
	}
}

// branch analyzes a conditional body with a copy of the held set and
// merges the exit state by union unless the body terminates.
func (w *lockWalker) branch(stmts []ast.Stmt) {
	saved := w.held
	w.held = copyHeld(saved)
	w.block(stmts)
	exit := w.held
	w.held = saved
	if terminates(stmts) {
		return
	}
	for k, p := range exit {
		w.held[k] = p
	}
}

func copyHeld(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// lockOp recognizes m.Lock()/m.RLock()/m.Unlock()/m.RUnlock() on a
// sync.Mutex or sync.RWMutex and returns the lock key.
func (w *lockWalker) lockOp(e ast.Expr) (key string, locked, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var isLock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isLock = true
	case "Unlock", "RUnlock":
		isLock = false
	default:
		return "", false, false
	}
	tv, okT := w.pass.Pkg.Info.Types[sel.X]
	if !okT || !isMutexType(tv.Type) {
		return "", false, false
	}
	return exprString(sel.X), isLock, true
}

// check scans an expression subtree for blocking operations while a
// lock is held. Function literals are skipped: their bodies run when
// called, not here.
func (w *lockWalker) check(root ast.Node) {
	if len(w.held) == 0 || root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportBlocked(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if why := w.bc.blockingCall(w.pass.Pkg.Info, n, interprocDepth); why != "" {
				w.reportBlocked(n.Pos(), why)
			}
		}
		return true
	})
}

func (w *lockWalker) reportBlocked(pos token.Pos, what string) {
	for key, lockPos := range w.held {
		w.pass.Reportf(pos, "%s while holding %s (locked at %s); hoist the blocking work outside the critical section",
			what, key, w.pass.Loader.Fset.Position(lockPos))
		return // one held lock in the message is enough
	}
}

// blockClassifier decides whether a call blocks, following
// module-internal callees through the loader's cross-package bodies.
type blockClassifier struct {
	loader *Loader
	memo   map[*types.Func]string
}

var osBlockingFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
	"WriteFile": true, "ReadDir": true, "Stat": true, "Lstat": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Mkdir": true,
	"MkdirAll": true, "Truncate": true,
}

var osFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"Close": true, "Sync": true, "Seek": true, "Stat": true,
	"Truncate": true, "ReadFrom": true,
}

var netBlockingFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true,
}

// blockingValueNames are function-value spellings presumed to block
// when called through a field or variable (dependency injection hides
// the real callee from the type checker).
var blockingValueNames = map[string]bool{
	"open": true, "openfile": true, "readfile": true, "readat": true,
	"fetch": true, "load": true, "dial": true,
}

// fileIfaceMethods are the methods that block on a file-like interface.
var fileIfaceMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"Close": true, "Sync": true,
}

// fileLikeInterfaceName returns the type's name when it is a named
// interface exposing Read or ReadAt (so implementations wrap real
// files), excluding the net interfaces handled above; "" otherwise.
func fileLikeInterfaceName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || isNetInterface(named) {
		return ""
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return ""
	}
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Read", "ReadAt":
			return named.Obj().Name()
		}
	}
	return ""
}

// blockingCall returns a short description of why the call blocks, or
// "" if it does not (or cannot be shown to).
func (bc *blockClassifier) blockingCall(info *types.Info, call *ast.CallExpr, depth int) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		// Dynamic call through a function value. Injected dependencies
		// like the handle cache's open callback can't be resolved
		// statically, so fall back to the callee's spelling.
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if blockingValueNames[strings.ToLower(name)] {
			return fmt.Sprintf("call to %s function value (presumed blocking by name)", name)
		}
		return ""
	}
	recvPkg, recvType := namedRecv(fn)
	switch fn.Pkg().Path() {
	case "os":
		if recvType == "" && osBlockingFuncs[fn.Name()] {
			return "call to os." + fn.Name()
		}
		if recvPkg == "os" && recvType == "File" && osFileMethods[fn.Name()] {
			return "call to (*os.File)." + fn.Name()
		}
	case "net":
		if recvType == "" && netBlockingFuncs[fn.Name()] {
			return "call to net." + fn.Name()
		}
		if recvPkg == "net" && fn.Name() == "Accept" {
			return "call to net Accept"
		}
	case "sync":
		// sync.Cond.Wait is designed to be called with the lock held;
		// only WaitGroup.Wait is an unbounded block.
		if recvType == "WaitGroup" && fn.Name() == "Wait" {
			return "call to sync.WaitGroup.Wait"
		}
	case "time":
		if recvType == "" && fn.Name() == "Sleep" {
			return "call to time.Sleep"
		}
	}
	// net.Conn / net.Listener interface methods.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && isNetInterface(tv.Type) {
			switch fn.Name() {
			case "Read", "Write", "Accept", "Close":
				return "call to net connection " + fn.Name()
			}
		}
	}
	// File-like interfaces (cache.File, io.ReaderAt, ...): reading or
	// closing one reaches real file I/O through any plausible
	// implementation. Classified by the operand's static type — an
	// embedded io.Closer's method object carries the io receiver, not
	// the embedding interface.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && fileIfaceMethods[fn.Name()] {
		if tv, ok := info.Types[sel.X]; ok {
			if name := fileLikeInterfaceName(tv.Type); name != "" {
				return fmt.Sprintf("call to %s on file-like interface %s", fn.Name(), name)
			}
		}
	}
	// Module-internal callee: look one level (up to interprocDepth)
	// into its body.
	if depth > 0 && strings.HasPrefix(fn.Pkg().Path(), bc.loader.ModulePath) {
		if why := bc.blockingBody(fn, depth); why != "" {
			return fmt.Sprintf("call to %s.%s, which blocks (%s)", fn.Pkg().Name(), fn.Name(), why)
		}
	}
	return ""
}

// blockingBody reports why fn's body blocks, or "". Results are
// memoized; recursion through the memo's in-progress marker breaks
// call cycles (treated as non-blocking).
func (bc *blockClassifier) blockingBody(fn *types.Func, depth int) string {
	if why, ok := bc.memo[fn]; ok {
		return why
	}
	bc.memo[fn] = "" // in-progress / cycle guard
	src := bc.loader.FuncSource(fn)
	if src.Decl == nil || src.Decl.Body == nil {
		return ""
	}
	why := ""
	ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				why = "channel receive"
			}
		case *ast.SendStmt:
			why = "channel send"
		case *ast.SelectStmt:
			why = "select"
		case *ast.CallExpr:
			why = bc.blockingCall(src.Pkg.Info, n, depth-1)
		}
		return true
	})
	bc.memo[fn] = why
	return why
}

// isNetInterface reports whether t is net.Conn or net.Listener.
func isNetInterface(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net" {
		return false
	}
	return obj.Name() == "Conn" || obj.Name() == "Listener"
}
