package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call expression to the function or method it
// statically invokes, or nil for dynamic calls (function values,
// builtins, conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// namedRecv returns the name of fn's receiver's base named type, and
// its package path ("" for none).
func namedRecv(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		if t.Obj().Pkg() != nil {
			return t.Obj().Pkg().Path(), t.Obj().Name()
		}
		return "", t.Obj().Name()
	case *types.Interface:
		return "", ""
	}
	return "", ""
}

// usesVar reports whether any identifier under root resolves to v.
func usesVar(info *types.Info, root ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return true
	})
	return found
}

// containsNode reports whether target appears under root.
func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders a simple expression (identifiers and selectors)
// for use as a lock key or in messages; other shapes render as "?".
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "?"
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// terminates reports whether the statement list always transfers
// control away (return, branch, or panic as its last statement).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
