package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLife requires every spawned goroutine to have a provable
// termination path, so serve loops, hedge losers and prefetchers
// cannot silently leak. A `go` statement is accepted when any of the
// following holds:
//
//   - the goroutine is WaitGroup-registered: an X.Add call on a
//     sync.WaitGroup precedes the statement in the enclosing function,
//     or the body calls Done on one (a leak then hangs Wait in tests
//     instead of vanishing);
//   - the body is bounded: it contains no `for {}`-style loop without a
//     condition (range loops terminate with their collection, or on
//     channel close);
//   - every unbounded loop in the body contains an escape — a return
//     (the ctx.Done()/close-signal select idiom) or a break that exits
//     the loop (an unlabeled break inside a nested select/switch/loop
//     does not count).
//
// Method and function calls spawned directly (`go s.readLoop()`)
// resolve through the loader to the callee's body; goroutines over
// dynamic function values cannot be proven and must carry a
// //dvlint:ignore with the reason.
var GoLife = &Analyzer{
	Name: "golife",
	Doc:  "every go statement has a provable termination path: done-channel select/return, bounded loop, or WaitGroup registration",
	Run:  runGoLife,
}

func runGoLife(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			adds := wgAddPositions(pass.Pkg.Info, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					checkGoStmt(pass, gs, adds)
				}
				return true
			})
		}
	}
	return nil
}

// wgAddPositions collects the positions of every sync.WaitGroup Add
// call in the declaration, for the "registered before spawn" test.
func wgAddPositions(info *types.Info, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
			if tv, ok := info.Types[sel.X]; ok && isWaitGroupType(tv.Type) {
				out = append(out, call.Pos())
			}
		}
		return true
	})
	return out
}

// checkGoStmt applies the three termination rules to one go statement.
func checkGoStmt(pass *Pass, gs *ast.GoStmt, wgAdds []token.Pos) {
	info := pass.Pkg.Info
	var body *ast.BlockStmt
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := calleeFunc(info, gs.Call); fn != nil {
		src := pass.Loader.FuncSource(fn)
		if src.Decl != nil {
			body = src.Decl.Body
			info = src.Pkg.Info
		}
	}
	if body == nil {
		pass.Reportf(gs.Pos(), "goroutine over a dynamic function value cannot be proven to terminate; spawn a named function or suppress with the reason")
		return
	}

	// Rule 1: WaitGroup-registered.
	for _, p := range wgAdds {
		if p < gs.Pos() {
			return
		}
	}
	if callsWaitGroupDone(info, body) {
		return
	}

	// Rules 2 and 3: no unbounded loop, or every unbounded loop escapes.
	bad := firstNonTerminatingLoop(body)
	if bad == nil {
		return
	}
	pass.Reportf(gs.Pos(), "goroutine has no provable termination path: unbounded loop at %s never returns or breaks; select on ctx.Done()/a close-signaled channel, bound the loop, or register the goroutine with a WaitGroup",
		pass.Loader.Fset.Position(bad.Pos()))
}

// callsWaitGroupDone reports whether the body (including deferred
// calls) calls Done on a sync.WaitGroup.
func callsWaitGroupDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if tv, ok := info.Types[sel.X]; ok && isWaitGroupType(tv.Type) {
				found = true
			}
		}
		return true
	})
	return found
}

// firstNonTerminatingLoop returns the first `for` loop without a
// condition in the goroutine body (not inside a nested function
// literal) that contains no escape, or nil when all loops terminate.
func firstNonTerminatingLoop(body *ast.BlockStmt) *ast.ForStmt {
	var bad *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs in another frame when called
		case *ast.ForStmt:
			if n.Cond == nil && !stmtsEscape(n.Body.List, true) {
				bad = n
			}
		}
		return true
	})
	return bad
}

// stmtsEscape reports whether the statement list can exit the enclosing
// unbounded loop: a return, a labeled branch (assumed to target an
// enclosing construct), or — while directly breakable — an unlabeled
// break. Nested loops, switches and selects consume unlabeled breaks,
// which is exactly the `break` inside `select` leak this distinguishes.
func stmtsEscape(stmts []ast.Stmt, breakable bool) bool {
	for _, s := range stmts {
		if stmtEscapes(s, breakable) {
			return true
		}
	}
	return false
}

func stmtEscapes(s ast.Stmt, breakable bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		if s.Label != nil {
			return true
		}
		return s.Tok == token.BREAK && breakable
	case *ast.BlockStmt:
		return stmtsEscape(s.List, breakable)
	case *ast.IfStmt:
		if stmtsEscape(s.Body.List, breakable) {
			return true
		}
		if s.Else != nil {
			return stmtEscapes(s.Else, breakable)
		}
	case *ast.LabeledStmt:
		return stmtEscapes(s.Stmt, breakable)
	case *ast.ForStmt:
		return stmtsEscape(s.Body.List, false)
	case *ast.RangeStmt:
		return stmtsEscape(s.Body.List, false)
	case *ast.SwitchStmt:
		return clausesEscape(s.Body.List)
	case *ast.TypeSwitchStmt:
		return clausesEscape(s.Body.List)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && stmtsEscape(cc.Body, false) {
				return true
			}
		}
	}
	return false
}

func clausesEscape(list []ast.Stmt) bool {
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok && stmtsEscape(cc.Body, false) {
			return true
		}
	}
	return false
}

// isWaitGroupType reports whether t is sync.WaitGroup (possibly behind
// a pointer).
func isWaitGroupType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
