package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the context discipline PR 1 introduced in the query
// path: cancellation must flow from the public API down to every block
// read and goroutine. In internal/core, internal/extractor and
// internal/cluster:
//
//   - context.Background()/context.TODO() may not appear below the
//     public API boundary — the only allowed shape is an exported shim
//     whose entire body is a single return delegating to the *Context
//     variant (e.g. Run → RunContext(context.Background(), ...));
//   - a declared context.Context parameter must actually be forwarded
//     (an unused ctx silently breaks cancellation downstream);
//   - an exported function that spawns goroutines or performs direct
//     file/net I/O must accept a context.Context.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported functions in core/extractor/cluster doing I/O or spawning goroutines accept and forward context.Context",
	Run:  runCtxFlow,
}

var ctxflowPkgNames = map[string]bool{"core": true, "extractor": true, "cluster": true}

func runCtxFlow(pass *Pass) error {
	if !ctxflowPkgNames[pass.Pkg.Name] {
		return nil
	}
	bc := &blockClassifier{loader: pass.Loader, memo: map[*types.Func]string{}}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCtxFunc(pass, bc, fd)
			}
		}
	}
	return nil
}

func checkCtxFunc(pass *Pass, bc *blockClassifier, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ctxVars, haveCtxParam := contextParams(info, fd)

	// Rule 1: no Background/TODO below the API boundary.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() != "Background" && fn.Name() != "TODO" {
			return true
		}
		if !isShimDelegation(fd, call) {
			pass.Reportf(call.Pos(),
				"context.%s() below the public API boundary: accept a context.Context and forward it (or make %s a single-return shim delegating to the Context variant)",
				fn.Name(), fd.Name.Name)
		}
		return true
	})

	// Rule 2: a named context parameter must be forwarded.
	for _, v := range ctxVars {
		if v.Name() == "" || v.Name() == "_" {
			continue
		}
		if !usesVar(info, fd.Body, v) {
			pass.Reportf(v.Pos(), "context parameter %s is declared but never forwarded", v.Name())
		}
	}

	// Rule 3: exported work-starting functions must take a context.
	// Close/Shutdown are exempt: they ARE the cancellation path, and
	// the io.Closer contract fixes their signature.
	if !fd.Name.IsExported() || haveCtxParam ||
		fd.Name.Name == "Close" || fd.Name.Name == "Shutdown" {
		return
	}
	var what string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			what = "spawns goroutines"
		case *ast.CallExpr:
			// Direct I/O only (depth 0): requiring a context on every
			// transitive path would flag pure constructors; the
			// boundary functions that matter issue the I/O themselves.
			if bc.blockingCall(info, n, 0) != "" {
				what = "performs blocking I/O"
			}
		}
		return true
	})
	if what != "" {
		pass.Reportf(fd.Name.Pos(),
			"exported %s %s but has no context.Context parameter", fd.Name.Name, what)
	}
}

// contextParams returns the named context.Context parameters and
// whether any parameter (named or not) has that type.
func contextParams(info *types.Info, fd *ast.FuncDecl) ([]*types.Var, bool) {
	var vars []*types.Var
	have := false
	if fd.Type.Params == nil {
		return nil, false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; !ok || !isContextType(tv.Type) {
			continue
		}
		have = true
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				vars = append(vars, v)
			}
		}
	}
	return vars, have
}

// isShimDelegation reports whether the Background/TODO call is the
// allowed shim shape: an exported function whose whole body is one
// return statement passing the fresh context into a *Context variant.
func isShimDelegation(fd *ast.FuncDecl, bgCall *ast.CallExpr) bool {
	if !fd.Name.IsExported() || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(ret, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if !strings.HasSuffix(name, "Context") {
			return true
		}
		for _, arg := range call.Args {
			if arg == ast.Expr(bgCall) || containsNode(arg, bgCall) {
				found = true
			}
		}
		return true
	})
	return found
}
