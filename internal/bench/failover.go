package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"time"

	"datavirt/internal/cluster"
	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/table"
)

// RunFailover measures replica-aware fault tolerance (ours; the
// paper's runtime assumes every data-source node stays up): a closed
// loop of window queries against a 2-way replicated cluster, run
// healthy and then again with one node killed mid-workload. Every
// query's row set is digest-verified against a healthy sequential
// run, so the killed-node column only reports latencies for queries
// that returned byte-identical results after failing over to the
// standby replica. Expected outcome: zero query errors and zero row
// divergence with the node down, with a bounded killed-run p99 (the
// dial failures that precede the health gate cost at most a few
// milliseconds each on localhost).
func RunFailover(cfg Config) (*Table, error) {
	spec := gen.IparsSpec{
		Realizations: 2,
		TimeSteps:    cfg.scaleInt(64, 8, 1),
		GridPoints:   30,
		Partitions:   3,
		Attrs:        6,
		Replicas:     2,
		Seed:         77,
	}
	root, err := ensureDir(cfg, "failover")
	if err != nil {
		return nil, err
	}
	if !haveMarker(root, "data") {
		cfg.logf("failover: generating ipars CLUSTER, 2-way replicated (%d time steps)", spec.TimeSteps)
		if _, err := gen.WriteIpars(root, spec, "CLUSTER"); err != nil {
			return nil, err
		}
		if err := setMarker(root, "data"); err != nil {
			return nil, err
		}
	}
	descPath := filepath.Join(root, "ipars_cluster.dvd")
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		return nil, err
	}

	const forms = 8
	queries := make([]string, forms)
	for i := range queries {
		t := 1 + i*(spec.TimeSteps-1)/forms
		queries[i] = fmt.Sprintf("SELECT * FROM IparsData WHERE TIME = %d", t)
	}
	digest := func(rows []table.Row) uint64 {
		var acc uint64
		for _, r := range rows {
			h := fnv.New64a()
			h.Write([]byte(table.FormatRow(r))) //nolint:errcheck
			acc ^= h.Sum64()
		}
		return acc ^ uint64(len(rows))
	}

	// Healthy sequential ground truth, straight off the local files.
	want := make([]uint64, forms)
	{
		svc, err := core.Open(descPath, root)
		if err != nil {
			return nil, err
		}
		for i, sql := range queries {
			rows, err := svc.Query(sql)
			if err != nil {
				svc.Close()
				return nil, err
			}
			want[i] = digest(rows)
		}
		svc.Close()
	}

	const victim = "node1"
	total := cfg.scaleInt(48, 16, forms)
	killAt := total / 3

	// run starts a fresh cluster, executes the closed loop, and — in
	// kill mode — closes the victim node while the workload is in
	// flight.
	run := func(kill bool) (lats []time.Duration, wall time.Duration, failovers, redispatched int64, err error) {
		nodes := map[string]*cluster.Node{}
		defer func() {
			for _, n := range nodes {
				n.Close() //nolint:errcheck — bench teardown
			}
		}()
		addrs := map[string]string{}
		for i := 0; i < spec.Partitions; i++ {
			svc, err := core.Open(descPath, root)
			if err != nil {
				return nil, 0, 0, 0, err
			}
			name := svc.AllNodes()[i]
			node, err := cluster.StartNode(context.Background(), name, svc, "127.0.0.1:0")
			if err != nil {
				return nil, 0, 0, 0, err
			}
			node.Logf = func(string, ...any) {} // the kill makes the victim noisy by design
			nodes[name] = node
			addrs[name] = node.Addr()
		}
		coord, err := cluster.NewCoordinator(d, addrs)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		defer coord.Close()
		// Warm plan caches and session pools so both modes start from
		// prepared plans over live connections.
		for i := range queries {
			if _, _, err := coord.CollectQueryContext(context.Background(), queries[i]); err != nil {
				return nil, 0, 0, 0, err
			}
		}
		start := time.Now()
		for i := 0; i < total; i++ {
			if kill && i == killAt {
				// Mid-workload crash: the kill races the in-flight query on
				// purpose — exactly the window the staged-delivery contract
				// must cover.
				go nodes[victim].Close() //nolint:errcheck — crash by design
			}
			qi := i % forms
			t0 := time.Now()
			rows, res, err := coord.CollectQueryContext(context.Background(), queries[qi])
			if err != nil {
				return nil, 0, 0, 0, fmt.Errorf("query %d (%s, kill=%v): %w", i, queries[qi], kill, err)
			}
			lats = append(lats, time.Since(t0))
			failovers += res.QueryStats.ReplicaFailovers
			redispatched += res.QueryStats.LegRedispatches
			if g := digest(rows); g != want[qi] {
				return nil, 0, 0, 0, fmt.Errorf("row divergence on %q (kill=%v): digest %x, healthy %x", queries[qi], kill, g, want[qi])
			}
		}
		return lats, time.Since(start), failovers, redispatched, nil
	}

	pct := func(lats []time.Duration, p float64) time.Duration {
		s := append([]time.Duration(nil), lats...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[int(p*float64(len(s)-1))]
	}

	cfg.logf("failover: healthy run — %d queries over %d replicated partitions", total, spec.Partitions)
	hLats, hWall, _, _, err := run(false)
	if err != nil {
		return nil, err
	}
	cfg.logf("failover: killed-node run — %s closed at query %d of %d", victim, killAt, total)
	kLats, kWall, kFail, kRedisp, err := run(true)
	if err != nil {
		return nil, err
	}
	if kFail < 1 {
		return nil, fmt.Errorf("killed-node run recorded no replica failovers — the kill never bit")
	}

	tbl := &Table{
		ID:     "failover",
		Title:  "Replica failover under a mid-workload node crash (ours)",
		Header: []string{"mode", "queries", "wall ms", "p50 ms", "p99 ms", "failovers", "redispatched"},
	}
	tbl.AddRow("healthy", fmt.Sprint(total), ms(hWall), ms(pct(hLats, 0.50)), ms(pct(hLats, 0.99)), "0", "0")
	tbl.AddRow(victim+" killed", fmt.Sprint(total), ms(kWall), ms(pct(kLats, 0.50)), ms(pct(kLats, 0.99)),
		fmt.Sprint(kFail), fmt.Sprint(kRedisp))
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("%s closed mid-workload at query %d; every query digest-verified against a healthy local run (zero divergence, zero errors)", victim, killAt),
		fmt.Sprintf("killed-run p99 %.1fx healthy p99 — bounded by dial failure + health gate, not a timeout", float64(pct(kLats, 0.99))/float64(pct(hLats, 0.99))))
	return tbl, nil
}
