package bench

import (
	"fmt"
	"path/filepath"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/handwritten"
	"datavirt/internal/table"
)

// RunFig11a reproduces Figure 11(a): Ipars execution time as the query
// window grows, hand-written vs generated code.
func RunFig11a(cfg Config) (*Table, error) {
	spec := gen.IparsSpec{
		Realizations: 2,
		TimeSteps:    cfg.scaleInt(128, 16, 8),
		GridPoints:   cfg.scaleInt(2400, 64, 8),
		Partitions:   4,
		Attrs:        17,
		Seed:         604,
	}
	root, err := ensureDir(cfg, "fig11a")
	if err != nil {
		return nil, err
	}
	if !haveMarker(root, "data") {
		cfg.logf("fig11a: generating Ipars dataset")
		if _, err := gen.WriteIpars(root, spec, "CLUSTER"); err != nil {
			return nil, err
		}
		if err := setMarker(root, "data"); err != nil {
			return nil, err
		}
	}
	svc, err := core.Open(filepath.Join(root, "ipars_cluster.dvd"), root)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig11a",
		Title:  "Ipars: execution time vs query size (hand vs generated)",
		Header: []string{"window_%", "rows", "hand_ms", "gen_ms", "gen/hand"},
	}
	T := spec.TimeSteps
	for _, frac := range []int{8, 4, 2, 1} { // 1/8, 1/4, 1/2, all
		width := T / frac
		sql := fmt.Sprintf("SELECT * FROM IparsData WHERE TIME >= 1 AND TIME <= %d", width)

		h := &handwritten.IparsCluster{Root: root, Spec: spec}
		var handRows int64
		handTime, err := timeBest(cfg, func() error {
			handRows = 0
			_, err := h.Query(sql, func(table.Row) error { handRows++; return nil })
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig11a hand %d%%: %w", 100/frac, err)
		}

		prep, err := svc.Prepare(sql)
		if err != nil {
			return nil, err
		}
		var genRows int64
		genTime, err := timeBest(cfg, func() error {
			genRows = 0
			_, err := prep.Run(core.Options{}, func(table.Row) error { genRows++; return nil })
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig11a gen %d%%: %w", 100/frac, err)
		}
		if handRows != genRows {
			return nil, fmt.Errorf("fig11a %d%%: hand %d rows, gen %d", 100/frac, handRows, genRows)
		}
		t.AddRow(fmt.Sprint(100/frac), fmt.Sprint(genRows), ms(handTime), ms(genTime),
			fmt.Sprintf("%.2f", float64(genTime)/float64(handTime)))
	}
	t.Notes = append(t.Notes, "processing time should stay proportional to the data retrieved (paper §5)")
	return t, nil
}

// RunFig11b reproduces Figure 11(b): Titan execution time as the
// spatial query window grows, hand-written vs generated code. It reuses
// the Figure 6 dataset (stored on a single node, as in the paper).
func RunFig11b(cfg Config) (*Table, error) {
	svc, db, spec, err := setupFig6(cfg)
	if err != nil {
		return nil, err
	}
	db.Close() // only the flat-file side is needed here

	h := &handwritten.Titan{Root: filepath.Join(cfg.WorkDir, "fig6"), Spec: spec}
	defer h.Close()

	t := &Table{
		ID:     "fig11b",
		Title:  "Titan: execution time vs query size (hand vs generated)",
		Header: []string{"window_%", "rows", "hand_ms", "gen_ms", "gen/hand"},
	}
	for _, pct := range []int{25, 50, 75, 100} {
		x := spec.XMax * pct / 100
		y := spec.YMax * pct / 100
		sql := fmt.Sprintf("SELECT * FROM TitanData WHERE X >= 0 AND X <= %d AND Y >= 0 AND Y <= %d", x, y)

		var handRows int64
		handTime, err := timeBest(cfg, func() error {
			handRows = 0
			_, err := h.Query(sql, func(table.Row) error { handRows++; return nil })
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig11b hand %d%%: %w", pct, err)
		}
		prep, err := svc.Prepare(sql)
		if err != nil {
			return nil, err
		}
		var genRows int64
		genTime, err := timeBest(cfg, func() error {
			genRows = 0
			_, err := prep.Run(core.Options{}, func(table.Row) error { genRows++; return nil })
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig11b gen %d%%: %w", pct, err)
		}
		if handRows != genRows {
			return nil, fmt.Errorf("fig11b %d%%: hand %d rows, gen %d", pct, handRows, genRows)
		}
		t.AddRow(fmt.Sprint(pct), fmt.Sprint(genRows), ms(handTime), ms(genTime),
			fmt.Sprintf("%.2f", float64(genTime)/float64(handTime)))
	}
	return t, nil
}
