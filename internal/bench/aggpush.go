package bench

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"time"

	"datavirt/internal/cache"
	"datavirt/internal/cluster"
	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/query"
	"datavirt/internal/sqlparser"
	"datavirt/internal/table"
)

// RunAggPush measures push-down aggregation with vectorized filtering
// (ours; the paper's runtime ships extracted tuples to the client).
// Two claims, each on both cache backends:
//
//  1. Cluster result traffic: a grouped aggregate executed as per-leg
//     partials ('A' frames merged at the coordinator) must move >=10x
//     fewer coordinator-side payload bytes than fetching the needed
//     columns as rows and aggregating at the coordinator — with
//     bit-identical result rows.
//  2. Filter throughput: the vectorized (batch/selection-vector) filter
//     must beat the per-row predicate path on a warm low-selectivity
//     scan, where filtering dominates extraction.
func RunAggPush(cfg Config) (*Table, error) {
	spec := gen.IparsSpec{
		Realizations: 2,
		TimeSteps:    cfg.scaleInt(24, 4, 2),
		GridPoints:   cfg.scaleInt(6144, 768, 3),
		Partitions:   3,
		Attrs:        5,
		Seed:         91,
	}
	root, err := ensureDir(cfg, "aggpush")
	if err != nil {
		return nil, err
	}
	if !haveMarker(root, "data") {
		cfg.logf("aggpush: generating ipars CLUSTER (%d rows)", spec.IparsTotalRows())
		if _, err := gen.WriteIpars(root, spec, "CLUSTER"); err != nil {
			return nil, err
		}
		if err := setMarker(root, "data"); err != nil {
			return nil, err
		}
	}
	descPath := filepath.Join(root, "ipars_cluster.dvd")
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		return nil, err
	}

	const aggSQL = "SELECT TIME, COUNT(*), SUM(SOIL), AVG(SGAS) FROM IparsData GROUP BY TIME"
	// The columns the aggregation consumes, fetched as plain rows: the
	// rows-then-aggregate baseline a client without push-down runs.
	const rowSQL = "SELECT TIME, SOIL, SGAS FROM IparsData"
	const filterSQL = "SELECT X, SOIL FROM IparsData WHERE SOIL > 0.99 AND SGAS <= 1"

	tbl := &Table{
		ID:     "aggpush",
		Title:  "Push-down aggregation + vectorized filtering vs rows-then-aggregate and per-row filter (ours)",
		Header: []string{"backend", "mode", "rows", "sent_KB", "time_ms"},
	}

	var worstBytes, worstFilter float64
	for _, backend := range []string{cache.BackendPread, cache.BackendMmap} {
		// --- claim 1: coordinator-side bytes, in-process cluster ---
		addrs := map[string]string{}
		var nodes []*cluster.Node
		for i := 0; i < spec.Partitions; i++ {
			svc, err := core.Open(descPath, root)
			if err != nil {
				return nil, err
			}
			svc.SetCacheConfig(cache.Config{Backend: backend})
			name := svc.Nodes()[i]
			node, err := cluster.StartNode(context.Background(), name, svc, "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, node)
			addrs[name] = node.Addr()
		}
		closeNodes := func() {
			for _, n := range nodes {
				n.Close()
			}
		}
		coord, err := cluster.NewCoordinator(d, addrs)
		if err != nil {
			closeNodes()
			return nil, err
		}

		runCluster := func(sql string) ([]table.Row, *cluster.Result, time.Duration, error) {
			var rows []table.Row
			var res *cluster.Result
			dur, err := timeBest(cfg, func() error {
				var err error
				rows, res, err = coord.CollectQueryContext(context.Background(), sql)
				return err
			})
			return rows, res, dur, err
		}
		pushedRows, pushedRes, pushedDur, err := runCluster(aggSQL)
		if err != nil {
			coord.Close()
			closeNodes()
			return nil, fmt.Errorf("aggpush %s pushed: %w", backend, err)
		}
		baseRows, baseRes, baseDur, err := runCluster(rowSQL)
		coord.Close()
		closeNodes()
		if err != nil {
			return nil, fmt.Errorf("aggpush %s baseline: %w", backend, err)
		}

		// Aggregate the baseline's fetched rows coordinator-side with the
		// same plan, bound to the row layout of rowSQL — the work a
		// client would do without push-down — and demand bit-identical
		// output.
		plan, err := query.BuildAggPlan(sqlparser.MustParse(aggSQL), d.TableSchema())
		if err != nil {
			return nil, err
		}
		baseCols := []string{"TIME", "SOIL", "SGAS"}
		err = plan.Bind(func(name string) (int, bool) {
			for i, c := range baseCols {
				if c == name {
					return i, true
				}
			}
			return 0, false
		})
		if err != nil {
			return nil, err
		}
		state := query.NewAggState(plan)
		for _, r := range baseRows {
			state.ObserveRow(r)
		}
		reagg := state.Finalize()
		if len(reagg) != len(pushedRows) {
			return nil, fmt.Errorf("aggpush %s: pushed %d groups, rows-then-aggregate %d", backend, len(pushedRows), len(reagg))
		}
		for i := range reagg {
			for j := range reagg[i] {
				a, b := reagg[i][j], pushedRows[i][j]
				if a.Kind != b.Kind || a.Int != b.Int || math.Float64bits(a.Float) != math.Float64bits(b.Float) {
					return nil, fmt.Errorf("aggpush %s: results diverge at row %d col %d: pushed %+v, baseline %+v",
						backend, i, j, b, a)
				}
			}
		}
		kb := func(b int64) string { return fmt.Sprintf("%.1f", float64(b)/1024) }
		tbl.AddRow(backend, "agg-pushdown", fmt.Sprint(len(pushedRows)), kb(pushedRes.SentBytes), ms(pushedDur))
		tbl.AddRow(backend, "rows-then-agg", fmt.Sprint(len(baseRows)), kb(baseRes.SentBytes), ms(baseDur))
		if pushedRes.SentBytes > 0 {
			r := float64(baseRes.SentBytes) / float64(pushedRes.SentBytes)
			if worstBytes == 0 || r < worstBytes {
				worstBytes = r
			}
		}

		// --- claim 2: vectorized vs per-row filter, warm local scan ---
		svc, err := core.Open(descPath, root)
		if err != nil {
			return nil, err
		}
		svc.SetCacheConfig(cache.Config{Backend: backend})
		prep, err := svc.Prepare(filterSQL)
		if err != nil {
			svc.Close()
			return nil, err
		}
		runFilter := func(scalar bool) (int64, time.Duration, error) {
			var n int64
			dur, err := timeBest(cfg, func() error {
				n = 0
				_, err := prep.Run(core.Options{ScalarFilter: scalar}, func(table.Row) error {
					n++
					return nil
				})
				return err
			})
			return n, dur, err
		}
		// Warm the block cache so both modes time filtering, not I/O.
		if _, _, err := runFilter(false); err != nil {
			svc.Close()
			return nil, err
		}
		vecRows, vecDur, err := runFilter(false)
		if err != nil {
			svc.Close()
			return nil, err
		}
		rowRows, rowDur, err := runFilter(true)
		svc.Close()
		if err != nil {
			return nil, err
		}
		if vecRows != rowRows {
			return nil, fmt.Errorf("aggpush %s: vectorized selected %d rows, per-row %d", backend, vecRows, rowRows)
		}
		tbl.AddRow(backend, "filter-vectorized", fmt.Sprint(vecRows), "-", ms(vecDur))
		tbl.AddRow(backend, "filter-per-row", fmt.Sprint(rowRows), "-", ms(rowDur))
		if vecDur > 0 {
			r := float64(rowDur) / float64(vecDur)
			if worstFilter == 0 || r < worstFilter {
				worstFilter = r
			}
		}
	}

	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("coordinator-side payload reduction (rows-then-agg / pushdown, worst backend): %.0fx", worstBytes),
		fmt.Sprintf("vectorized filter speedup on warm low-selectivity scan (worst backend): %.2fx", worstFilter),
		"pushed-down and rows-then-aggregate results verified bit-identical (group order, float bit patterns)")
	if !cfg.Quick && worstBytes < 10 {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("WARNING: payload reduction %.1fx below the 10x target", worstBytes))
	}
	if !cfg.Quick && worstFilter < 1 {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("WARNING: vectorized filter slower than per-row (%.2fx)", worstFilter))
	}
	return tbl, nil
}
