package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/handwritten"
	"datavirt/internal/table"
)

// fig10Spec sizes the fixed Ipars study that is re-partitioned across
// 1..8 data-source nodes (the paper used 1.3 GB on up to 16 nodes).
func fig10Spec(cfg Config, partitions int) gen.IparsSpec {
	return gen.IparsSpec{
		Realizations: 2,
		TimeSteps:    cfg.scaleInt(64, 8, 2),
		GridPoints:   cfg.scaleInt(4800, 64, 16),
		Partitions:   partitions,
		Attrs:        17,
		Seed:         604,
	}
}

// fig10Nodes lists the evaluated node counts.
func fig10Nodes() []int { return []int{1, 2, 4, 8} }

// nodeTimes measures each node's leg of the query in isolation (one
// after another, so timings on machines with few CPUs are not polluted
// by scheduler interleaving). On a real cluster the nodes run
// simultaneously on separate machines, so the maximum per-node time is
// the cluster's execution time; the sum is the single-machine total.
func nodeTimes(n int, work func(node int) (int64, error)) (total time.Duration, maxNode time.Duration, rows int64, err error) {
	for i := 0; i < n; i++ {
		s := time.Now()
		count, err := work(i)
		d := time.Since(s)
		if err != nil {
			return 0, 0, 0, err
		}
		rows += count
		total += d
		if d > maxNode {
			maxNode = d
		}
	}
	return total, maxNode, rows, nil
}

// RunFig10 reproduces Figure 10: execution time of a fixed query as the
// number of data-source nodes grows, hand-written vs generated code.
func RunFig10(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "fig10",
		Title: "Scalability with data-source nodes (fixed dataset, hand vs generated)",
		Header: []string{"nodes", "hand_total_ms", "gen_total_ms",
			"hand_pernode_ms", "gen_pernode_ms", "gen/hand", "rows"},
	}
	var refRows int64 = -1
	for _, n := range fig10Nodes() {
		spec := fig10Spec(cfg, n)
		root, err := ensureDir(cfg, "fig10", fmt.Sprintf("n%d", n))
		if err != nil {
			return nil, err
		}
		if !haveMarker(root, "data") {
			cfg.logf("fig10: generating %d-node partitioning", n)
			if _, err := gen.WriteIpars(root, spec, "CLUSTER"); err != nil {
				return nil, err
			}
			if err := setMarker(root, "data"); err != nil {
				return nil, err
			}
		}
		descPath := filepath.Join(root, "ipars_cluster.dvd")
		// The paper's Figure 10 query touches roughly half the study.
		sql := fmt.Sprintf("SELECT * FROM IparsData WHERE TIME > %d", spec.TimeSteps/2)

		// Hand-written: one worker per node scanning its partition.
		var handWall, handNode time.Duration
		var handRows int64
		_, err = timeBest(cfg, func() error {
			w, m, r, err := nodeTimes(n, func(node int) (int64, error) {
				h := &handwritten.IparsCluster{Root: root, Spec: spec, Dirs: []int{node}}
				return h.Query(sql, func(table.Row) error { return nil })
			})
			if err == nil {
				handWall, handNode, handRows = w, m, r
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig10 n%d hand: %w", n, err)
		}

		// Generated: one worker per node running the compiled service
		// with that node's filter.
		svc, err := core.Open(descPath, root)
		if err != nil {
			return nil, err
		}
		prep, err := svc.Prepare(sql)
		if err != nil {
			return nil, err
		}
		nodes := svc.Nodes()
		var genWall, genNode time.Duration
		var genRows int64
		_, err = timeBest(cfg, func() error {
			w, m, r, err := nodeTimes(n, func(node int) (int64, error) {
				var count int64
				_, err := prep.Run(core.Options{NodeFilter: nodes[node]}, func(table.Row) error {
					count++
					return nil
				})
				return count, err
			})
			if err == nil {
				genWall, genNode, genRows = w, m, r
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig10 n%d gen: %w", n, err)
		}
		if handRows != genRows {
			return nil, fmt.Errorf("fig10 n%d: hand %d rows, gen %d rows", n, handRows, genRows)
		}
		if refRows < 0 {
			refRows = genRows
		} else if genRows != refRows {
			return nil, fmt.Errorf("fig10 n%d: %d rows, expected %d across node counts", n, genRows, refRows)
		}
		ratio := float64(genNode) / float64(handNode)
		t.AddRow(fmt.Sprint(n), ms(handWall), ms(genWall), ms(handNode), ms(genNode),
			fmt.Sprintf("%.2f", ratio), fmt.Sprint(genRows))
	}
	t.Notes = append(t.Notes,
		"pernode_ms = max per-node time, measured with nodes run in isolation: the execution time a real cluster (one machine per node) would observe",
		"total_ms = sum over nodes (single-machine cost); the paper's 'scaled almost linearly' is the per-node series")
	return t, nil
}
