// Package bench is the experiment harness: for every table and figure
// of the paper's evaluation (§5) it regenerates the corresponding
// measurement at laptop scale and prints the same rows/series the paper
// reports. EXPERIMENTS.md records the mapping and the paper-vs-measured
// comparison; DESIGN.md §4 is the experiment index.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Config controls dataset sizes and workspace placement.
type Config struct {
	// WorkDir holds generated datasets and rowstore files. Datasets are
	// reused across runs when already present.
	WorkDir string
	// Scale multiplies default dataset sizes (1.0 = the documented
	// defaults; EXPERIMENTS.md was produced at 1.0).
	Scale float64
	// Quick shrinks every dataset to smoke-test size (used by unit
	// tests and -short benchmarks).
	Quick bool
	// Trials is the number of timed repetitions; the minimum is
	// reported (default 2).
	Trials int
	// Verbose echoes progress to stderr.
	Verbose bool
	// CacheBackend is the block-cache backend experiments use where
	// they do not compare backends themselves (cache.BackendPread,
	// cache.BackendMmap or cache.BackendAuto; empty follows the cache
	// package default). The mmap experiment always measures both.
	CacheBackend string
}

func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	return 2
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

func (c Config) logf(format string, args ...any) {
	if c.Verbose {
		fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	}
}

// scaleInt scales n, keeping at least min and divisibility by div.
func (c Config) scaleInt(n, min, div int) int {
	v := int(float64(n) * c.scale())
	if c.Quick {
		v = n / 16
	}
	if v < min {
		v = min
	}
	if div > 1 {
		v = (v + div - 1) / div * div
	}
	return v
}

// Table is one experiment's output in paper-table form.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cols ...string) { t.Rows = append(t.Rows, cols) }

// Format renders an aligned text table.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one runnable reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Table, error)
}

// Experiments returns the registry, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig6", "PostgreSQL-like rowstore vs datavirt on Titan queries (Figures 6+7)", RunFig6},
		{"fig9a", "Query 1 (full scan) across file layouts L0/I–VI (Figure 9a)", RunFig9a},
		{"fig9b", "Queries 2–5 across file layouts L0/I–VI (Figure 9b)", RunFig9b},
		{"fig10", "Scalability with data-source nodes, hand vs generated (Figure 10)", RunFig10},
		{"fig11a", "Varying query size on Ipars, hand vs generated (Figure 11a)", RunFig11a},
		{"fig11b", "Varying query size on Titan, hand vs generated (Figure 11b)", RunFig11b},
		{"ablation-index", "Ablation: chunk-index pruning on vs off (ours)", RunAblationIndex},
		{"ablation-chunk", "Ablation: chunked vs monolithic Titan storage (ours)", RunAblationChunks},
		{"ablation-coalesce", "Ablation: chunk coalescing on vs off (ours)", RunAblationCoalesce},
		{"cache", "Block cache cold vs warm on repeated-range queries (ours)", RunCache},
		{"plancache", "Semantic plan cache cold vs warm prepare on a repeated query mix (ours)", RunPlanCache},
		{"mmap", "Cache backends pread vs mmap, cold and warm (ours)", RunMmap},
		{"concurrency", "Closed-loop concurrent serving vs one-query-at-a-time (ours)", RunConcurrency},
		{"failover", "Replica failover under a mid-workload node crash (ours)", RunFailover},
		{"sparseindex", "Sparse block-index sidecars: data skipping on vs off (ours)", RunSparseIndex},
		{"aggpush", "Push-down aggregation bytes + vectorized vs per-row filtering (ours)", RunAggPush},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids.
func IDs() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// timeBest runs f cfg.trials() times and returns the fastest duration.
func timeBest(cfg Config, f func() error) (time.Duration, error) {
	best := time.Duration(-1)
	for i := 0; i < cfg.trials(); i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// ms renders a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// ensureDir creates a workspace subdirectory.
func ensureDir(cfg Config, parts ...string) (string, error) {
	dir := filepath.Join(append([]string{cfg.WorkDir}, parts...)...)
	return dir, os.MkdirAll(dir, 0o755)
}

// haveMarker tests and sets dataset-reuse markers.
func haveMarker(dir, name string) bool {
	_, err := os.Stat(filepath.Join(dir, name+".ok"))
	return err == nil
}

func setMarker(dir, name string) error {
	return os.WriteFile(filepath.Join(dir, name+".ok"), []byte("ok\n"), 0o644)
}
