package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"datavirt/internal/core"
	"datavirt/internal/gen"
)

// RunPlanCache measures the semantic plan cache on a repeated prepare
// mix: N distinct time windows, each phrased in two textually different
// but range-equal ways. The cold pass prepares every window on an
// invalidated cache (every prepare pays the index stage); the warm pass
// re-prepares the full mix — both textual variants — and must be served
// entirely from the cache with the index stage skipped (IndexTime == 0
// on every prepare). Expected outcome: warm prepares are >= 5x faster
// than cold on the repeated mix.
func RunPlanCache(cfg Config) (*Table, error) {
	// Same dataset (and workdir) as the block-cache experiment: the
	// tiny-chunk CLUSTER regime gives the index stage many chunk-index
	// lookups and a large AFC enumeration to memoize.
	spec := gen.IparsSpec{
		Realizations: 2,
		TimeSteps:    cfg.scaleInt(12000, 128, 2),
		GridPoints:   16,
		Partitions:   2,
		Attrs:        17,
		Seed:         604,
	}
	root, err := ensureDir(cfg, "cache")
	if err != nil {
		return nil, err
	}
	if !haveMarker(root, "data") {
		cfg.logf("plancache: generating ipars CLUSTER (%d time steps)", spec.TimeSteps)
		if _, err := gen.WriteIpars(root, spec, "CLUSTER"); err != nil {
			return nil, err
		}
		if err := setMarker(root, "data"); err != nil {
			return nil, err
		}
	}
	descPath := filepath.Join(root, "ipars_cluster.dvd")

	svc, err := core.Open(descPath, root)
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	// The dashboard mix: distinct narrow windows, each submitted in two
	// textual forms with equal normalized ranges and needed columns.
	windows := cfg.scaleInt(16, 4, 1)
	step := spec.TimeSteps / (windows + 1)
	if step < 1 {
		step = 1
	}
	variantA := func(w int) string {
		lo := 1 + w*step
		return fmt.Sprintf("SELECT X, SOIL FROM IparsData WHERE TIME >= %d AND TIME <= %d", lo, lo+step-1)
	}
	variantB := func(w int) string {
		lo := 1 + w*step
		return fmt.Sprintf("SELECT SOIL, X FROM IparsData WHERE TIME BETWEEN %d AND %d", lo, lo+step-1)
	}

	type pass struct {
		prepares     int
		hits, misses int64
		total        time.Duration
		index        time.Duration
	}
	prepare := func(p *pass, sql string, wantWarm bool) error {
		start := time.Now()
		prep, err := svc.Prepare(sql)
		if err != nil {
			return err
		}
		p.total += time.Since(start)
		p.prepares++
		h, m := prep.PlanCacheCounters()
		p.hits += h
		p.misses += m
		_, idx := prep.PrepareStats()
		p.index += idx
		if wantWarm && idx != 0 {
			return fmt.Errorf("plancache: warm prepare of %q ran the index stage (%v)", sql, idx)
		}
		if wantWarm && h != 1 {
			return fmt.Errorf("plancache: warm prepare of %q missed the cache", sql)
		}
		return nil
	}

	// Cold: invalidate (drops plans and memoized chunk indexes), then
	// prepare each window once; every prepare builds its plan. Best of
	// trials, each trial fully cold.
	var cold pass
	coldBest := time.Duration(-1)
	for trial := 0; trial < cfg.trials(); trial++ {
		svc.InvalidatePlans()
		var p pass
		for w := 0; w < windows; w++ {
			if err := prepare(&p, variantA(w), false); err != nil {
				return nil, err
			}
		}
		if p.misses != int64(windows) {
			return nil, fmt.Errorf("plancache: cold pass recorded %d misses, want %d", p.misses, windows)
		}
		if coldBest < 0 || p.total < coldBest {
			cold, coldBest = p, p.total
		}
	}

	// Warm: the cache now holds every window's plan; re-prepare the
	// full mix in both textual variants. Every prepare must hit.
	var warm pass
	warmBest := time.Duration(-1)
	for trial := 0; trial < cfg.trials(); trial++ {
		var p pass
		for w := 0; w < windows; w++ {
			if err := prepare(&p, variantA(w), true); err != nil {
				return nil, err
			}
			if err := prepare(&p, variantB(w), true); err != nil {
				return nil, err
			}
		}
		if warmBest < 0 || p.total < warmBest {
			warm, warmBest = p, p.total
		}
	}

	avgUS := func(p pass) float64 {
		if p.prepares == 0 {
			return 0
		}
		return float64(p.total.Microseconds()) / float64(p.prepares)
	}
	t := &Table{
		ID:     "plancache",
		Title:  "Semantic plan cache: cold vs warm prepare over a repeated query mix",
		Header: []string{"pass", "prepares", "hits", "misses", "avg_prepare_us", "index_us", "time_ms"},
	}
	row := func(label string, p pass) {
		t.AddRow(label, fmt.Sprint(p.prepares), fmt.Sprint(p.hits), fmt.Sprint(p.misses),
			fmt.Sprintf("%.1f", avgUS(p)),
			fmt.Sprint(p.index.Microseconds()),
			fmt.Sprintf("%.2f", float64(p.total.Microseconds())/1000))
	}
	row("cold", cold)
	row("warm", warm)

	st := svc.PlanCacheStats()
	speedup := avgUS(cold) / avgUS(warm)
	t.Notes = append(t.Notes,
		fmt.Sprintf("prepare speedup (cold avg / warm avg): %.1fx over %d windows x 2 textual variants", speedup, windows),
		"every warm prepare reports IndexTime == 0: the index stage is skipped, not just faster",
		fmt.Sprintf("cache residency: %d entries, %d bytes (estimated)", st.Entries, st.Bytes))
	if !cfg.Quick && speedup < 5 {
		t.Notes = append(t.Notes, fmt.Sprintf("WARNING: speedup %.1fx below the 5x target", speedup))
	}
	return t, nil
}
