package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"datavirt/internal/cluster"
	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/table"
)

// RunConcurrency measures the concurrent serving path (ours; the
// paper's runtime system executes one query at a time per node): a
// closed loop of N clients firing small window queries at an
// in-process cluster through one coordinator's pooled multiplexed
// sessions, against a one-query-at-a-time baseline over ephemeral
// per-query connections (the pre-multiplexing wire protocol's shape).
// Both runs execute the same total number of queries; every query's
// result is digested and compared against a sequential run, so the
// speedup is only reported over verified-identical row sets. Expected
// outcome: multiplexed closed-loop throughput >= 2x the sequential
// baseline, with p50/p99 latency reported for both.
func RunConcurrency(cfg Config) (*Table, error) {
	spec := gen.IparsSpec{
		Realizations: 2,
		TimeSteps:    cfg.scaleInt(64, 8, 1),
		GridPoints:   30,
		Partitions:   3,
		Attrs:        6,
		Seed:         77,
	}
	root, err := ensureDir(cfg, "concurrency")
	if err != nil {
		return nil, err
	}
	if !haveMarker(root, "data") {
		cfg.logf("concurrency: generating ipars CLUSTER (%d time steps)", spec.TimeSteps)
		if _, err := gen.WriteIpars(root, spec, "CLUSTER"); err != nil {
			return nil, err
		}
		if err := setMarker(root, "data"); err != nil {
			return nil, err
		}
	}
	descPath := filepath.Join(root, "ipars_cluster.dvd")
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		return nil, err
	}

	// One node server per partition, all in-process.
	addrs := map[string]string{}
	for i := 0; i < spec.Partitions; i++ {
		svc, err := core.Open(descPath, root)
		if err != nil {
			return nil, err
		}
		name := svc.Nodes()[i]
		node, err := cluster.StartNode(context.Background(), name, svc, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer node.Close()
		addrs[name] = node.Addr()
	}

	// The workload: distinct narrow time windows (point reads at
	// cluster scale — the regime where per-query connection setup and
	// round-trip gaps dominate extraction).
	const forms = 8
	queries := make([]string, forms)
	for i := range queries {
		t := 1 + i*(spec.TimeSteps-1)/forms
		queries[i] = fmt.Sprintf("SELECT * FROM IparsData WHERE TIME = %d", t)
	}

	// Sequential ground truth: an order-independent digest per form.
	digest := func(rows []table.Row) uint64 {
		var acc uint64
		for _, r := range rows {
			h := fnv.New64a()
			h.Write([]byte(table.FormatRow(r))) //nolint:errcheck
			acc ^= h.Sum64()
		}
		return acc ^ uint64(len(rows))
	}
	want := make([]uint64, forms)
	seq, err := cluster.NewCoordinator(d, addrs)
	if err != nil {
		return nil, err
	}
	for i, sql := range queries {
		rows, _, err := seq.CollectQueryContext(context.Background(), sql)
		if err != nil {
			seq.Close()
			return nil, err
		}
		want[i] = digest(rows)
	}
	seq.Close()

	const clients = 8
	perClient := cfg.scaleInt(24, 3, 1)
	total := clients * perClient

	// run executes total queries through nclients closed-loop workers
	// sharing one coordinator, returning every query's latency.
	run := func(poolSize, nclients int) ([]time.Duration, time.Duration, error) {
		coord, err := cluster.NewCoordinator(d, addrs)
		if err != nil {
			return nil, 0, err
		}
		defer coord.Close()
		coord.PoolSize = poolSize
		// Warm plan caches (and the pool, when persistent) so both
		// modes start from prepared plans.
		for i := range queries {
			if _, _, err := coord.CollectQueryContext(context.Background(), queries[i]); err != nil {
				return nil, 0, err
			}
		}
		per := total / nclients
		lats := make([][]time.Duration, nclients)
		errs := make([]error, nclients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < nclients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					qi := (c + i) % forms
					t0 := time.Now()
					rows, err := coord.QueryContext(context.Background(), queries[qi])
					if err != nil {
						errs[c] = err
						return
					}
					var got []table.Row
					for rows.Next() {
						got = append(got, rows.Row())
					}
					err = rows.Err()
					rows.Close()
					if err != nil {
						errs[c] = err
						return
					}
					lats[c] = append(lats[c], time.Since(t0))
					if g := digest(got); g != want[qi] {
						errs[c] = fmt.Errorf("row divergence on %q: digest %x, sequential %x", queries[qi], g, want[qi])
						return
					}
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(start)
		var all []time.Duration
		for c := range lats {
			if errs[c] != nil {
				return nil, 0, errs[c]
			}
			all = append(all, lats[c]...)
		}
		return all, wall, nil
	}

	type outcome struct {
		lats []time.Duration
		wall time.Duration
	}
	measure := func(poolSize, nclients int) (outcome, error) {
		best := outcome{}
		for i := 0; i < cfg.trials(); i++ {
			lats, wall, err := run(poolSize, nclients)
			if err != nil {
				return outcome{}, err
			}
			if best.wall == 0 || wall < best.wall {
				best = outcome{lats, wall}
			}
		}
		return best, nil
	}

	cfg.logf("concurrency: baseline — 1 client, ephemeral connections, %d queries", total)
	base, err := measure(-1, 1)
	if err != nil {
		return nil, err
	}
	cfg.logf("concurrency: multiplexed — %d clients over pooled sessions, %d queries", clients, total)
	mux, err := measure(0, clients)
	if err != nil {
		return nil, err
	}

	pct := func(lats []time.Duration, p float64) time.Duration {
		s := append([]time.Duration(nil), lats...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		idx := int(p * float64(len(s)-1))
		return s[idx]
	}
	qps := func(o outcome) float64 {
		return float64(total) / o.wall.Seconds()
	}

	tbl := &Table{
		ID:     "concurrency",
		Title:  "Closed-loop concurrent serving vs one-query-at-a-time (ours)",
		Header: []string{"mode", "clients", "queries", "wall ms", "qps", "p50 ms", "p99 ms"},
	}
	tbl.AddRow("sequential/ephemeral", "1", fmt.Sprint(total), ms(base.wall),
		fmt.Sprintf("%.0f", qps(base)), ms(pct(base.lats, 0.50)), ms(pct(base.lats, 0.99)))
	tbl.AddRow("multiplexed/pool", fmt.Sprint(clients), fmt.Sprint(total), ms(mux.wall),
		fmt.Sprintf("%.0f", qps(mux)), ms(pct(mux.lats, 0.50)), ms(pct(mux.lats, 0.99)))
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("multiplexed throughput %.2fx sequential baseline", qps(mux)/qps(base)),
		"every query's row set digest-verified against a sequential run (zero divergence)")
	return tbl, nil
}
