package bench

import "fmt"

// The evaluation queries, transcribed from the paper's Figures 7 and 8
// with literals scaled to the generated datasets (the paper's Titan
// coordinates and Ipars time steps are properties of its specific
// multi-GB datasets; the fractions of data touched are preserved).
// `dvbench -list` prints both the paper's original text and the scaled
// form actually executed.

// TitanQuery is one Figure 7 query.
type TitanQuery struct {
	No    int
	Paper string // the paper's text
	SQL   func(from string) string
}

// titanQueries builds the Figure 7 set for a coordinate space of
// xmax × ymax × zmax.
func titanQueries(xmax, ymax, zmax int) []TitanQuery {
	return []TitanQuery{
		{1,
			"SELECT * FROM TITAN",
			func(from string) string { return "SELECT * FROM " + from }},
		{2,
			"SELECT * FROM TITAN WHERE X>=0 AND X<=10000 AND Y>=0 AND Y<=10000 AND Z>=0 AND Z<=100",
			func(from string) string {
				return fmt.Sprintf("SELECT * FROM %s WHERE X>=0 AND X<=%d AND Y>=0 AND Y<=%d AND Z>=0 AND Z<=%d",
					from, xmax/2, ymax/2, zmax/2)
			}},
		{3,
			"SELECT * FROM TITAN WHERE DISTANCE(X,Y,Z)<1000",
			func(from string) string {
				return fmt.Sprintf("SELECT * FROM %s WHERE DISTANCE(X,Y,Z)<%d", from, xmax/10)
			}},
		{4,
			"SELECT * FROM TITAN WHERE S1 < 0.01",
			func(from string) string { return "SELECT * FROM " + from + " WHERE S1 < 0.01" }},
		{5,
			"SELECT * FROM TITAN WHERE S1 < 0.5",
			func(from string) string { return "SELECT * FROM " + from + " WHERE S1 < 0.5" }},
	}
}

// IparsQuery is one Figure 8 query.
type IparsQuery struct {
	No    int
	Type  string
	Paper string
	SQL   func(from string) string
}

// iparsQueries builds the Figure 8 set for a dataset with T time steps.
// The paper's window TIME>1000 AND TIME<1100 covers ~5% of its run;
// the scaled window covers the same fraction of T.
func iparsQueries(T int) []IparsQuery {
	lo := T / 2
	hi := lo + T/10
	mid := lo + T/20
	return []IparsQuery{
		{1, "Full scan of the table",
			"SELECT * FROM IPARS",
			func(from string) string { return "SELECT * FROM " + from }},
		{2, "Subsetting using indexed attribute",
			"SELECT * FROM IPARS WHERE TIME>1000 AND TIME<1100",
			func(from string) string {
				return fmt.Sprintf("SELECT * FROM %s WHERE TIME>%d AND TIME<%d", from, lo, hi)
			}},
		{3, "Subsetting using indexed attribute and filtering",
			"SELECT * FROM IPARS WHERE TIME>1000 AND TIME<1100 AND SOIL>0.7",
			func(from string) string {
				return fmt.Sprintf("SELECT * FROM %s WHERE TIME>%d AND TIME<%d AND SOIL>0.7", from, lo, hi)
			}},
		{4, "Subsetting using indexed attribute and filtering with a user defined function",
			"SELECT * FROM IPARS WHERE TIME>1000 AND TIME<1100 AND Speed() < 30",
			func(from string) string {
				return fmt.Sprintf("SELECT * FROM %s WHERE TIME>%d AND TIME<%d AND SPEED(OILVX,OILVY,OILVZ) < 30", from, lo, hi)
			}},
		{5, "Accessing the data from a remote client",
			"SELECT * FROM IPARS WHERE TIME>1000 AND TIME<1050",
			func(from string) string {
				return fmt.Sprintf("SELECT * FROM %s WHERE TIME>%d AND TIME<%d", from, lo, mid)
			}},
	}
}
