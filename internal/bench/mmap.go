package bench

import (
	"fmt"
	"path/filepath"

	"datavirt/internal/cache"
	"datavirt/internal/core"
	"datavirt/internal/extractor"
	"datavirt/internal/gen"
	"datavirt/internal/table"
)

// RunMmap compares the block cache's pread and mmap backends on the
// same repeated-range workload RunCache uses (Ipars CLUSTER tiny
// chunks, narrow time window re-queried cold then warm). The backends
// share every layer above the block load, so rows and hit/miss
// sequences must agree exactly; what differs is how a cold block gets
// its bytes — copied out of the page cache by pread, or aliased
// zero-copy from a file mapping by mmap. Expected outcome: the mmap
// cold pass reads ~0 bytes through the read path (fs_MB ~ 0 while
// mmap_blk counts the blocks served from the mapping) and its warm
// pass is at least as fast as pread's.
func RunMmap(cfg Config) (*Table, error) {
	spec := gen.IparsSpec{
		Realizations: 2,
		TimeSteps:    cfg.scaleInt(12000, 128, 2),
		GridPoints:   16,
		Partitions:   2,
		Attrs:        17,
		Seed:         604,
	}
	// Same dataset regime as the cache experiment (separate workspace so
	// the two experiments' reuse markers stay independent).
	root, err := ensureDir(cfg, "mmap")
	if err != nil {
		return nil, err
	}
	if !haveMarker(root, "data") {
		cfg.logf("mmap: generating ipars CLUSTER (%d time steps)", spec.TimeSteps)
		if _, err := gen.WriteIpars(root, spec, "CLUSTER"); err != nil {
			return nil, err
		}
		if err := setMarker(root, "data"); err != nil {
			return nil, err
		}
	}
	descPath := filepath.Join(root, "ipars_cluster.dvd")

	hi := spec.TimeSteps / 8
	if hi < 2 {
		hi = 2
	}
	sql := fmt.Sprintf("SELECT X, SOIL FROM IparsData WHERE TIME >= 1 AND TIME <= %d", hi)
	const extractBuf = 128

	t := &Table{
		ID:     "mmap",
		Title:  "Cache backends pread vs mmap on a repeated-range query (Ipars tiny chunks)",
		Header: []string{"backend", "pass", "rows", "fs_MB", "hits", "misses", "mmap_blk", "remaps", "time_ms"},
	}

	type pass struct {
		rows   int64
		stats  extractor.Stats
		timeMS float64
	}
	run := func(backend string) (cold, warm pass, err error) {
		svc, err := core.Open(descPath, root)
		if err != nil {
			return cold, warm, err
		}
		defer svc.Close()
		svc.SetCacheConfig(cache.Config{BlockBytes: 256 << 10, Backend: backend})
		prep, err := svc.Prepare(sql)
		if err != nil {
			return cold, warm, err
		}
		one := func() (pass, error) {
			var p pass
			dur, err := timeBest(Config{Trials: 1}, func() error {
				p.rows = 0
				var e error
				p.stats, e = prep.Run(core.Options{BlockBytes: extractBuf}, func(table.Row) error {
					p.rows++
					return nil
				})
				return e
			})
			p.timeMS = float64(dur.Microseconds()) / 1000
			return p, err
		}
		if cold, err = one(); err != nil {
			return cold, warm, fmt.Errorf("mmap %s cold: %w", backend, err)
		}
		best := pass{timeMS: -1}
		for i := 0; i < cfg.trials(); i++ {
			p, err := one()
			if err != nil {
				return cold, warm, fmt.Errorf("mmap %s warm: %w", backend, err)
			}
			if best.timeMS < 0 || p.timeMS < best.timeMS {
				best = p
			}
		}
		return cold, best, nil
	}
	row := func(backend, label string, p pass) {
		t.AddRow(backend, label, fmt.Sprint(p.rows),
			fmt.Sprintf("%.1f", float64(p.stats.FSBytesRead)/1e6),
			fmt.Sprint(p.stats.CacheHits), fmt.Sprint(p.stats.CacheMisses),
			fmt.Sprint(p.stats.MmapBlocksServed), fmt.Sprint(p.stats.MmapRemaps),
			fmt.Sprintf("%.1f", p.timeMS))
	}

	preadCold, preadWarm, err := run(cache.BackendPread)
	if err != nil {
		return nil, err
	}
	mmapCold, mmapWarm, err := run(cache.BackendMmap)
	if err != nil {
		return nil, err
	}
	row("pread", "cold", preadCold)
	row("pread", "warm", preadWarm)
	row("mmap", "cold", mmapCold)
	row("mmap", "warm", mmapWarm)

	if mmapCold.rows != preadCold.rows || mmapWarm.rows != preadWarm.rows {
		return nil, fmt.Errorf("mmap: row counts diverge: pread %d/%d mmap %d/%d",
			preadCold.rows, preadWarm.rows, mmapCold.rows, mmapWarm.rows)
	}
	if mmapCold.stats.CacheHits != preadCold.stats.CacheHits ||
		mmapCold.stats.CacheMisses != preadCold.stats.CacheMisses {
		return nil, fmt.Errorf("mmap: hit/miss sequences diverge: pread %d/%d mmap %d/%d",
			preadCold.stats.CacheHits, preadCold.stats.CacheMisses,
			mmapCold.stats.CacheHits, mmapCold.stats.CacheMisses)
	}
	if preadWarm.stats.FSBytesRead != 0 || mmapWarm.stats.FSBytesRead != 0 {
		return nil, fmt.Errorf("mmap: warm pass read fs bytes: pread %d mmap %d",
			preadWarm.stats.FSBytesRead, mmapWarm.stats.FSBytesRead)
	}
	supported := mmapCold.stats.MmapBlocksServed > 0
	if supported && mmapCold.stats.FSBytesRead >= preadCold.stats.FSBytesRead && preadCold.stats.FSBytesRead > 0 {
		return nil, fmt.Errorf("mmap: cold pass copied as much as pread (%d vs %d fs bytes)",
			mmapCold.stats.FSBytesRead, preadCold.stats.FSBytesRead)
	}
	warmRatio := preadWarm.timeMS / mmapWarm.timeMS
	t.Notes = append(t.Notes,
		fmt.Sprintf("warm throughput ratio (pread warm / mmap warm): %.2fx", warmRatio),
		"fs_MB counts bytes copied through the read path; mmap cold serves blocks as mapping views instead",
		fmt.Sprintf("both backends extract through a %d-byte buffer and agree block-for-block on hits/misses", extractBuf))
	if !supported {
		t.Notes = append(t.Notes, "NOTE: mmap unsupported on this platform; both columns measured the pread fallback")
	} else if !cfg.Quick && warmRatio < 1 {
		t.Notes = append(t.Notes, fmt.Sprintf("WARNING: warm mmap slower than warm pread (%.2fx)", warmRatio))
	}
	return t, nil
}
