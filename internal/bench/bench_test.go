package bench

import (
	"strings"
	"testing"
)

func quickCfg(t *testing.T) Config {
	t.Helper()
	return Config{WorkDir: t.TempDir(), Quick: true, Trials: 1}
}

// TestAllExperimentsQuick smoke-runs every experiment at tiny scale:
// the full setup → measure → cross-check pipeline of each figure must
// complete and produce a plausible table.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := quickCfg(t)
	for _, e := range Experiments() {
		tbl, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if tbl.ID != e.ID {
			t.Errorf("%s: table id = %s", e.ID, tbl.ID)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		out := tbl.Format()
		if !strings.Contains(out, e.ID) {
			t.Errorf("%s: Format output missing id:\n%s", e.ID, out)
		}
		t.Logf("\n%s", out)
	}
}

// TestDatasetReuse runs an experiment twice in the same workdir; the
// second run must reuse the generated data (markers present) and agree
// on row counts.
func TestDatasetReuse(t *testing.T) {
	cfg := quickCfg(t)
	t1, err := RunFig9a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunFig9a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Row-count column (last) must match between runs.
	last := len(t1.Header) - 1
	for i := range t1.Rows {
		if t1.Rows[i][last] != t2.Rows[i][last] {
			t.Errorf("row %d counts differ across reuse: %s vs %s",
				i, t1.Rows[i][last], t2.Rows[i][last])
		}
	}
}

func TestVerify(t *testing.T) {
	cfg := quickCfg(t)
	if err := Verify(cfg); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	if len(IDs()) != len(Experiments()) {
		t.Error("IDs/Experiments mismatch")
	}
	if _, ok := Lookup("fig6"); !ok {
		t.Error("fig6 not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"},
		Notes: []string{"n1"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	out := tbl.Format()
	for _, want := range []string{"== x: T ==", "a    bb", "333  4", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestQuerySets(t *testing.T) {
	tq := titanQueries(20000, 20000, 200)
	if len(tq) != 5 {
		t.Fatalf("titan queries = %d", len(tq))
	}
	for _, q := range tq {
		if q.Paper == "" || q.SQL("T") == "" {
			t.Errorf("Q%d incomplete", q.No)
		}
	}
	iq := iparsQueries(128)
	if len(iq) != 5 {
		t.Fatalf("ipars queries = %d", len(iq))
	}
	if !strings.Contains(iq[3].SQL("I"), "SPEED(") {
		t.Errorf("Q4 missing filter: %s", iq[3].SQL("I"))
	}
}
