package bench

import (
	"fmt"
	"path/filepath"

	"datavirt/internal/cache"
	"datavirt/internal/core"
	"datavirt/internal/extractor"
	"datavirt/internal/gen"
	"datavirt/internal/table"
)

// RunCache measures the node-local block cache on a repeated-range
// workload: the same narrow query executed cold, then warm, with the
// cache on and off. The dataset uses the tiny-chunk CLUSTER regime
// (many time steps, small grids) where extraction is dominated by
// per-chunk positional reads — exactly the syscall traffic the block
// cache absorbs. Expected outcome: the warm cached pass reads ~0 bytes
// from the filesystem and beats the uncached pass by >=2x.
func RunCache(cfg Config) (*Table, error) {
	spec := gen.IparsSpec{
		Realizations: 2,
		TimeSteps:    cfg.scaleInt(12000, 128, 2),
		GridPoints:   16,
		Partitions:   2,
		Attrs:        17,
		Seed:         604,
	}
	root, err := ensureDir(cfg, "cache")
	if err != nil {
		return nil, err
	}
	if !haveMarker(root, "data") {
		cfg.logf("cache: generating ipars CLUSTER (%d time steps)", spec.TimeSteps)
		if _, err := gen.WriteIpars(root, spec, "CLUSTER"); err != nil {
			return nil, err
		}
		if err := setMarker(root, "data"); err != nil {
			return nil, err
		}
	}
	descPath := filepath.Join(root, "ipars_cluster.dvd")

	// The repeated-range workload: a narrow time window, re-queried —
	// the warm-cache case a dashboard or parameter sweep produces. X
	// comes from the COORDS file, which the CLUSTER layout re-reads on
	// every time step, so the block cache also collapses repeated spans
	// within a single execution.
	hi := spec.TimeSteps / 8
	if hi < 2 {
		hi = 2
	}
	sql := fmt.Sprintf("SELECT X, SOIL FROM IparsData WHERE TIME >= 1 AND TIME <= %d", hi)

	// A small extraction buffer puts both modes in the per-row
	// positional-read regime of the paper's tiny aligned chunks — the
	// syscall traffic the block cache exists to absorb.
	const extractBuf = 128

	t := &Table{
		ID:     "cache",
		Title:  "Block cache cold vs warm on a repeated-range query (Ipars tiny chunks)",
		Header: []string{"mode", "pass", "rows", "fs_MB", "hits", "misses", "hit_pct", "time_ms"},
	}

	type pass struct {
		rows   int64
		stats  extractor.Stats
		timeMS float64
	}
	// run executes the query repeatedly against one service and reports
	// the best trial of each pass (cold = first, warm = repeat).
	run := func(mode string, ccfg cache.Config) (cold, warm pass, err error) {
		svc, err := core.Open(descPath, root)
		if err != nil {
			return cold, warm, err
		}
		defer svc.Close()
		svc.SetCacheConfig(ccfg)
		prep, err := svc.Prepare(sql)
		if err != nil {
			return cold, warm, err
		}
		one := func() (pass, error) {
			var p pass
			dur, err := timeBest(Config{Trials: 1}, func() error {
				p.rows = 0
				var e error
				p.stats, e = prep.Run(core.Options{BlockBytes: extractBuf}, func(table.Row) error {
					p.rows++
					return nil
				})
				return e
			})
			p.timeMS = float64(dur.Microseconds()) / 1000
			return p, err
		}
		if cold, err = one(); err != nil {
			return cold, warm, fmt.Errorf("cache %s cold: %w", mode, err)
		}
		// Warm: best of trials, all against the now-populated cache.
		best := pass{timeMS: -1}
		for i := 0; i < cfg.trials(); i++ {
			p, err := one()
			if err != nil {
				return cold, warm, fmt.Errorf("cache %s warm: %w", mode, err)
			}
			if best.timeMS < 0 || p.timeMS < best.timeMS {
				best = p
			}
		}
		return cold, best, nil
	}
	row := func(mode, label string, p pass) {
		total := p.stats.CacheHits + p.stats.CacheMisses
		hitPct := 0.0
		if total > 0 {
			hitPct = 100 * float64(p.stats.CacheHits) / float64(total)
		}
		t.AddRow(mode, label, fmt.Sprint(p.rows),
			fmt.Sprintf("%.1f", float64(p.stats.FSBytesRead)/1e6),
			fmt.Sprint(p.stats.CacheHits), fmt.Sprint(p.stats.CacheMisses),
			fmt.Sprintf("%.1f", hitPct), fmt.Sprintf("%.1f", p.timeMS))
	}

	offCold, offWarm, err := run("cache-off", cache.Config{Disabled: true})
	if err != nil {
		return nil, err
	}
	onCold, onWarm, err := run("cache-on", cache.Config{BlockBytes: 256 << 10, Readahead: 2, Backend: cfg.CacheBackend})
	if err != nil {
		return nil, err
	}
	row("cache-off", "cold", offCold)
	row("cache-off", "warm", offWarm)
	row("cache-on", "cold", onCold)
	row("cache-on", "warm", onWarm)

	if onCold.rows != offCold.rows || onWarm.rows != offWarm.rows {
		return nil, fmt.Errorf("cache: row counts diverge: off %d/%d on %d/%d",
			offCold.rows, offWarm.rows, onCold.rows, onWarm.rows)
	}
	if onWarm.stats.FSBytesRead != 0 {
		return nil, fmt.Errorf("cache: warm cached pass read %d fs bytes, want 0", onWarm.stats.FSBytesRead)
	}
	speedup := offWarm.timeMS / onWarm.timeMS
	t.Notes = append(t.Notes,
		fmt.Sprintf("repeated-range speedup (uncached warm / cached warm): %.2fx", speedup),
		"warm cached pass performs zero filesystem reads; fs_MB is physical bytes, not payload bytes",
		fmt.Sprintf("both modes extract through a %d-byte buffer (per-row reads, the tiny-chunk regime)", extractBuf))
	if !cfg.Quick && speedup < 2 {
		t.Notes = append(t.Notes, fmt.Sprintf("WARNING: speedup %.2fx below the 2x target", speedup))
	}
	return t, nil
}
