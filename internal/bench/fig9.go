package bench

import (
	"fmt"
	"path/filepath"
	"strings"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/handwritten"
	"datavirt/internal/table"
)

// fig9Spec sizes the Ipars dataset used for the layout experiments.
func fig9Spec(cfg Config) gen.IparsSpec {
	return gen.IparsSpec{
		Realizations: 4,
		TimeSteps:    cfg.scaleInt(128, 8, 4),
		GridPoints:   cfg.scaleInt(1000, 64, 8),
		Partitions:   1,
		Attrs:        17,
		Seed:         604,
	}
}

// fig9Variants lists the compared configurations: the hand-written code
// for the original L0 format, then the compiler-generated code for L0
// and the paper's layouts I–VI.
func fig9Variants() []string {
	return []string{"L0-hand", "L0", "I", "II", "III", "IV", "V", "VI"}
}

// setupFig9Layout materializes one layout (reused across runs) and
// returns its root and descriptor path.
func setupFig9Layout(cfg Config, spec gen.IparsSpec, layoutID string) (root, descPath string, err error) {
	root, err = ensureDir(cfg, "fig9", strings.ToLower(layoutID))
	if err != nil {
		return "", "", err
	}
	descPath = filepath.Join(root, "ipars_"+strings.ToLower(layoutID)+".dvd")
	if !haveMarker(root, "data") {
		cfg.logf("fig9: generating layout %s", layoutID)
		if _, err := gen.WriteIpars(root, spec, layoutID); err != nil {
			return "", "", err
		}
		if err := setMarker(root, "data"); err != nil {
			return "", "", err
		}
	}
	return root, descPath, nil
}

// runFig9 measures the given Figure 8 query numbers over every variant.
func runFig9(cfg Config, id, title string, queryNos []int) (*Table, error) {
	spec := fig9Spec(cfg)
	queries := iparsQueries(spec.TimeSteps)
	t := &Table{ID: id, Title: title}
	t.Header = []string{"layout"}
	for _, n := range queryNos {
		t.Header = append(t.Header, fmt.Sprintf("Q%d_ms", n))
	}
	t.Header = append(t.Header, "rows_Q"+fmt.Sprint(queryNos[0]))

	var refRows int64 = -1
	for _, variant := range fig9Variants() {
		layoutID := variant
		hand := false
		if variant == "L0-hand" {
			layoutID, hand = "L0", true
		}
		root, descPath, err := setupFig9Layout(cfg, spec, layoutID)
		if err != nil {
			return nil, err
		}
		row := []string{variant}
		var firstRows int64
		for qi, n := range queryNos {
			q := queries[n-1]
			sql := q.SQL("IparsData")
			var rows int64
			var d string
			if hand {
				h := &handwritten.IparsL0{Root: root, Spec: spec}
				dur, err := timeBest(cfg, func() error {
					rows = 0
					_, err := h.Query(sql, func(table.Row) error { rows++; return nil })
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("%s %s Q%d: %w", id, variant, n, err)
				}
				d = ms(dur)
			} else {
				svc, err := core.Open(descPath, root)
				if err != nil {
					return nil, err
				}
				prep, err := svc.Prepare(sql)
				if err != nil {
					return nil, fmt.Errorf("%s %s Q%d: %w", id, variant, n, err)
				}
				dur, err := timeBest(cfg, func() error {
					rows = 0
					_, err := prep.Run(core.Options{}, func(table.Row) error { rows++; return nil })
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("%s %s Q%d: %w", id, variant, n, err)
				}
				d = ms(dur)
			}
			if qi == 0 {
				firstRows = rows
			}
			row = append(row, d)
		}
		// Cross-variant sanity: every layout answers identically.
		if refRows < 0 {
			refRows = firstRows
		} else if firstRows != refRows {
			return nil, fmt.Errorf("%s: layout %s returned %d rows, expected %d",
				id, variant, firstRows, refRows)
		}
		row = append(row, fmt.Sprint(firstRows))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"L0-hand is the hand-written extractor for the original application format; all other rows use compiler-generated code",
		fmt.Sprintf("dataset: %d realizations x %d steps x %d grid points x 17 variables",
			spec.Realizations, spec.TimeSteps, spec.GridPoints))
	return t, nil
}

// RunFig9a reproduces Figure 9(a): the full-scan query across layouts.
func RunFig9a(cfg Config) (*Table, error) {
	return runFig9(cfg, "fig9a", "Ipars Query 1 (full scan) across file layouts", []int{1})
}

// RunFig9b reproduces Figure 9(b): queries 2–5 across layouts.
func RunFig9b(cfg Config) (*Table, error) {
	return runFig9(cfg, "fig9b", "Ipars Queries 2-5 across file layouts", []int{2, 3, 4, 5})
}
