package bench

import (
	"fmt"
	"path/filepath"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/rowstore"
	"datavirt/internal/schema"
	"datavirt/internal/table"
)

// fig6Spec sizes the Titan dataset for the Figure 6 comparison.
func fig6Spec(cfg Config) gen.TitanSpec {
	return gen.TitanSpec{
		Points: cfg.scaleInt(1_500_000, 20_000, 1),
		XMax:   20000, YMax: 20000, ZMax: 200,
		TilesX: 16, TilesY: 16, TilesZ: 8,
		Nodes: 1, Seed: 604,
	}
}

// setupFig6 generates the Titan dataset and loads it into the rowstore
// (data files, chunk index, heap, B-tree indexes on X, Y, Z and S1 — the
// paper indexes "by spatial coordinates in both systems and also by
// attribute S1 in PostgreSQL"). Both are reused across runs.
func setupFig6(cfg Config) (svc *core.Service, db *rowstore.DB, spec gen.TitanSpec, err error) {
	spec = fig6Spec(cfg)
	dir, err := ensureDir(cfg, "fig6")
	if err != nil {
		return nil, nil, spec, err
	}
	if !haveMarker(dir, "titan") {
		cfg.logf("fig6: generating Titan dataset (%d points)", spec.Points)
		if _, err := gen.WriteTitan(dir, spec); err != nil {
			return nil, nil, spec, err
		}
		if err := setMarker(dir, "titan"); err != nil {
			return nil, nil, spec, err
		}
	}
	svc, err = core.Open(filepath.Join(dir, "titan.dvd"), dir)
	if err != nil {
		return nil, nil, spec, err
	}

	pgDir := filepath.Join(dir, "rowstore")
	loaded := haveMarker(dir, "rowstore")
	db, err = rowstore.Open(pgDir)
	if err != nil {
		return nil, nil, spec, err
	}
	if !loaded {
		cfg.logf("fig6: COPYing %d tuples into the rowstore", spec.Points)
		tbl, err := db.Create(gen.TitanSchema())
		if err != nil {
			db.Close()
			return nil, nil, spec, err
		}
		j := int64(0)
		row := make(table.Row, 8)
		if _, err := tbl.CopyFrom(func() (table.Row, bool, error) {
			if j >= int64(spec.Points) {
				return nil, false, nil
			}
			x, y, z, s := spec.Point(j)
			row[0] = schema.IntValue(int64(x))
			row[1] = schema.IntValue(int64(y))
			row[2] = schema.IntValue(int64(z))
			for k := 0; k < 5; k++ {
				row[3+k] = schema.FloatValue(float64(s[k]))
			}
			j++
			return row, true, nil
		}); err != nil {
			db.Close()
			return nil, nil, spec, err
		}
		for _, attr := range []string{"X", "Y", "Z", "S1"} {
			cfg.logf("fig6: CREATE INDEX on %s", attr)
			if err := tbl.CreateIndex(attr); err != nil {
				db.Close()
				return nil, nil, spec, err
			}
		}
		if err := setMarker(dir, "rowstore"); err != nil {
			db.Close()
			return nil, nil, spec, err
		}
	}
	return svc, db, spec, nil
}

// RunFig6 reproduces Figure 6: execution time of the five Figure 7
// queries on the PostgreSQL-like rowstore vs datavirt (STORM).
func RunFig6(cfg Config) (*Table, error) {
	svc, db, spec, err := setupFig6(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	t := &Table{
		ID:     "fig6",
		Title:  "Titan queries: rowstore (PostgreSQL stand-in) vs datavirt",
		Header: []string{"query", "rows", "datavirt_ms", "rowstore_ms", "rowstore_plan", "winner"},
	}
	raw := int64(spec.Points) * gen.TitanRecordBytes
	loaded := db.Table("TITAN").SizeBytes()
	t.Notes = append(t.Notes,
		fmt.Sprintf("raw flat files: %.1f MB; loaded rowstore (heap+indexes): %.1f MB (%.1fx) — paper: 6 GB -> 18 GB (3x)",
			float64(raw)/1e6, float64(loaded)/1e6, float64(loaded)/float64(raw)))

	for _, q := range titanQueries(spec.XMax, spec.YMax, spec.ZMax) {
		dvSQL := q.SQL("TitanData")
		pgSQL := q.SQL("TITAN")

		var dvRows int64
		dvTime, err := timeBest(cfg, func() error {
			prep, err := svc.Prepare(dvSQL)
			if err != nil {
				return err
			}
			dvRows = 0
			_, err = prep.Run(core.Options{}, func(table.Row) error {
				dvRows++
				return nil
			})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 q%d datavirt: %w", q.No, err)
		}

		var pgRows int64
		var plan string
		pgTime, err := timeBest(cfg, func() error {
			pgRows = 0
			stats, err := db.QueryStream(pgSQL, func(table.Row) error {
				pgRows++
				return nil
			})
			plan = stats.Plan
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 q%d rowstore: %w", q.No, err)
		}
		if dvRows != pgRows {
			return nil, fmt.Errorf("fig6 q%d: datavirt %d rows, rowstore %d rows", q.No, dvRows, pgRows)
		}
		winner := "datavirt"
		if pgTime < dvTime {
			winner = "rowstore"
		}
		t.AddRow(fmt.Sprintf("Q%d", q.No), fmt.Sprint(dvRows), ms(dvTime), ms(pgTime), plan, winner)
	}
	return t, nil
}
