package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"

	"datavirt/internal/core"
	"datavirt/internal/extractor"
	"datavirt/internal/filter"
	"datavirt/internal/gen"
	"datavirt/internal/index"
	"datavirt/internal/metadata"
	"datavirt/internal/query"
	"datavirt/internal/schema"
	"datavirt/internal/sqlparser"
	"datavirt/internal/table"
)

// RunAblationIndex isolates the value of the generated index functions:
// the same query executed with chunk pruning (ranges fed to the index)
// and without (empty ranges — every chunk read, the WHERE clause applied
// only as a per-row filter). This quantifies DESIGN.md's claim that the
// index check in Process_File_Groups, not the extractor, delivers the
// subsetting speedups.
func RunAblationIndex(cfg Config) (*Table, error) {
	svc, db, spec, err := setupFig6(cfg)
	if err != nil {
		return nil, err
	}
	db.Close()
	dir := filepath.Join(cfg.WorkDir, "fig6")

	q := titanQueries(spec.XMax, spec.YMax, spec.ZMax)[1] // the spatial window query
	sql := q.SQL("TitanData")
	parsed, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sch := svc.Schema()
	reg := filter.NewRegistry()
	pred, err := query.CompilePredicate(parsed.Where, func(name string) (int, bool) {
		i := sch.Index(name)
		return i, i >= 0
	}, reg)
	if err != nil {
		return nil, err
	}
	loader := func(fi metadata.FileInstance) (*index.ChunkIndex, error) {
		return index.ReadFile(filepath.Join(dir, fi.Node(), filepath.FromSlash(fi.Path())))
	}
	resolver := core.NodeResolver(dir)

	t := &Table{
		ID:     "ablation-index",
		Title:  "Chunk-index pruning on vs off (Titan spatial window query)",
		Header: []string{"mode", "afcs", "bytes_read_MB", "rows_out", "time_ms"},
	}
	run := func(mode string, ranges query.Ranges) error {
		afcs, err := svc.Plan().Generate(ranges, sch.Names(), loader)
		if err != nil {
			return err
		}
		var rows int64
		var stats extractor.Stats
		dur, err := timeBest(cfg, func() error {
			rows = 0
			var e error
			stats, e = extractor.Run(afcs, resolver, extractor.Options{
				Cols: sch.Attrs(), Pred: pred,
			}, func(table.Row) error { rows++; return nil })
			return e
		})
		if err != nil {
			return err
		}
		t.AddRow(mode, fmt.Sprint(len(afcs)), fmt.Sprintf("%.1f", float64(stats.BytesRead)/1e6),
			fmt.Sprint(rows), ms(dur))
		return nil
	}
	if err := run("index-on", query.ExtractRanges(parsed.Where)); err != nil {
		return nil, fmt.Errorf("ablation-index on: %w", err)
	}
	if err := run("index-off", query.Ranges{}); err != nil {
		return nil, fmt.Errorf("ablation-index off: %w", err)
	}
	if len(t.Rows) == 2 && t.Rows[0][3] != t.Rows[1][3] {
		return nil, fmt.Errorf("ablation-index: row counts differ: %s vs %s", t.Rows[0][3], t.Rows[1][3])
	}
	t.Notes = append(t.Notes, "both modes apply the full WHERE clause per row; only chunk pruning differs")
	return t, nil
}

// RunAblationChunks compares chunked storage with a spatial index
// against a monolithic single-chunk file — the design choice behind the
// satellite application's layout (paper §2.2).
func RunAblationChunks(cfg Config) (*Table, error) {
	spec := fig6Spec(cfg)
	t := &Table{
		ID:     "ablation-chunk",
		Title:  "Chunked+indexed vs monolithic Titan storage (spatial window query)",
		Header: []string{"layout", "chunks", "rows", "time_ms"},
	}
	variants := []struct {
		name    string
		tile    [3]int
		sub     string
		altSeed int64
	}{
		{"chunked 16x16x8", [3]int{16, 16, 8}, "chunked", 604},
		{"monolithic 1x1x1", [3]int{1, 1, 1}, "mono", 604},
	}
	var refRows int64 = -1
	for _, v := range variants {
		s := spec
		s.TilesX, s.TilesY, s.TilesZ = v.tile[0], v.tile[1], v.tile[2]
		s.Seed = v.altSeed
		root, err := ensureDir(cfg, "ablation-chunk", v.sub)
		if err != nil {
			return nil, err
		}
		if !haveMarker(root, "data") {
			cfg.logf("ablation-chunk: generating %s", v.name)
			if _, err := gen.WriteTitan(root, s); err != nil {
				return nil, err
			}
			if err := setMarker(root, "data"); err != nil {
				return nil, err
			}
		}
		svc, err := core.Open(filepath.Join(root, "titan.dvd"), root)
		if err != nil {
			return nil, err
		}
		sql := titanQueries(s.XMax, s.YMax, s.ZMax)[1].SQL("TitanData")
		prep, err := svc.Prepare(sql)
		if err != nil {
			return nil, err
		}
		var rows int64
		dur, err := timeBest(cfg, func() error {
			rows = 0
			_, err := prep.Run(core.Options{}, func(table.Row) error { rows++; return nil })
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("ablation-chunk %s: %w", v.name, err)
		}
		if refRows < 0 {
			refRows = rows
		} else if rows != refRows {
			return nil, fmt.Errorf("ablation-chunk: %s returned %d rows, expected %d", v.name, rows, refRows)
		}
		t.AddRow(v.name, fmt.Sprint(len(prep.AFCs)), fmt.Sprint(rows), ms(dur))
	}
	return t, nil
}

// RunAblationCoalesce measures chunk coalescing (ours): merging
// contiguous aligned file chunks before extraction. Layout I (one file,
// REL and TIME outer loops) collapses to a single chunk on a full scan;
// the Figure 4 cluster layout cannot merge (COORDS is re-read per time
// step) and serves as the control.
func RunAblationCoalesce(cfg Config) (*Table, error) {
	// Small grids make each aligned chunk tiny (dozens of rows), the
	// regime where per-chunk overhead dominates and merging pays.
	spec := gen.IparsSpec{
		Realizations: 2,
		TimeSteps:    cfg.scaleInt(4000, 64, 2),
		GridPoints:   cfg.scaleInt(64, 16, 16),
		Partitions:   1,
		Attrs:        17,
		Seed:         604,
	}
	t := &Table{
		ID:     "ablation-coalesce",
		Title:  "Chunk coalescing on vs off (full scan, tiny chunks)",
		Header: []string{"layout", "mode", "afcs", "rows", "time_ms"},
	}
	for _, layoutID := range []string{"I", "III", "CLUSTER"} {
		lspec := spec
		if layoutID == "CLUSTER" {
			lspec.Partitions = 2
		}
		root, err := ensureDir(cfg, "ablation-coalesce", strings.ToLower(layoutID))
		if err != nil {
			return nil, err
		}
		if !haveMarker(root, "data") {
			cfg.logf("ablation-coalesce: generating layout %s", layoutID)
			if _, err := gen.WriteIpars(root, lspec, layoutID); err != nil {
				return nil, err
			}
			if err := setMarker(root, "data"); err != nil {
				return nil, err
			}
		}
		svc, err := core.Open(filepath.Join(root, "ipars_"+strings.ToLower(layoutID)+".dvd"), root)
		if err != nil {
			return nil, err
		}
		prep, err := svc.Prepare("SELECT * FROM IparsData")
		if err != nil {
			return nil, err
		}
		var refRows int64 = -1
		for _, coalesce := range []bool{false, true} {
			mode := "off"
			if coalesce {
				mode = "on"
			}
			var rows int64
			var chunks int
			dur, err := timeBest(cfg, func() error {
				rows = 0
				var stats extractor.Stats
				stats, err := prep.Run(core.Options{Coalesce: coalesce}, func(table.Row) error {
					rows++
					return nil
				})
				chunks = stats.AFCs
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("ablation-coalesce %s/%s: %w", layoutID, mode, err)
			}
			if refRows < 0 {
				refRows = rows
			} else if rows != refRows {
				return nil, fmt.Errorf("ablation-coalesce %s: %s returned %d rows, want %d",
					layoutID, mode, rows, refRows)
			}
			t.AddRow(layoutID, mode, fmt.Sprint(chunks), fmt.Sprint(rows), ms(dur))
		}
	}
	t.Notes = append(t.Notes,
		"layout I collapses to one chunk; CLUSTER is the control (COORDS re-reads block merging)")
	return t, nil
}

// Verify double-checks cross-system row counts on a small sample —
// invoked by dvbench -verify before timing anything.
func Verify(cfg Config) error {
	quick := cfg
	quick.Quick = true
	quick.WorkDir = filepath.Join(cfg.WorkDir, "verify")
	svc, db, spec, err := setupFig6(quick)
	if err != nil {
		return err
	}
	defer db.Close()
	for _, q := range titanQueries(spec.XMax, spec.YMax, spec.ZMax) {
		cur, err := svc.QueryContext(context.Background(), q.SQL("TitanData"))
		if err != nil {
			return err
		}
		var dv int
		for cur.Next() {
			dv++
		}
		if err := cur.Close(); err != nil {
			return err
		}
		pg, _, err := db.Query(q.SQL("TITAN"))
		if err != nil {
			return err
		}
		if dv != len(pg) {
			return fmt.Errorf("verify: Q%d: datavirt %d rows, rowstore %d", q.No, dv, len(pg))
		}
	}
	return nil
}

var _ = schema.Invalid // keep the schema import for Attrs() use above
