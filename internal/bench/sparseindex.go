package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"path/filepath"

	"datavirt/internal/cache"
	"datavirt/internal/core"
	"datavirt/internal/extractor"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/sparse"
	"datavirt/internal/table"
)

// RunSparseIndex measures the persistent sparse block index (sidecar
// zone maps, internal/sparse) on a selective range query over the
// monolithic Ipars layout I. The grid walk makes Z piecewise-constant
// along the file, so a narrow Z window touches only a thin slice of
// each data file; with sidecars the extractor proves most 64 KiB
// blocks cannot match and never reads them. Each pass runs cold (fresh
// service, empty block cache) with the index honoured and ignored
// (Options.NoSparse), on both cache backends. Expected outcome: the
// indexed cold pass reads >=5x fewer filesystem bytes and returns
// byte-identical rows.
func RunSparseIndex(cfg Config) (*Table, error) {
	spec := gen.IparsSpec{
		Realizations: 1,
		TimeSteps:    2,
		GridPoints:   cfg.scaleInt(262144, 4096, 1),
		Partitions:   1,
		Attrs:        5,
		Seed:         604,
	}
	root, err := ensureDir(cfg, "sparseindex")
	if err != nil {
		return nil, err
	}
	const blockBytes = 64 << 10
	if !haveMarker(root, "data") {
		cfg.logf("sparseindex: generating ipars layout I (%d grid points)", spec.GridPoints)
		descPath, err := gen.WriteIpars(root, spec, "I")
		if err != nil {
			return nil, err
		}
		d, err := metadata.ParseFile(descPath)
		if err != nil {
			return nil, err
		}
		opt := sparse.BuildOptions{BlockBytes: blockBytes}
		if _, err := sparse.BuildDataset(d, sparse.NodeResolver(root), opt, nil); err != nil {
			return nil, err
		}
		if err := setMarker(root, "data"); err != nil {
			return nil, err
		}
	}
	descPath := filepath.Join(root, "ipars_i.dvd")

	// A narrow window on the slowest-varying coordinate: the top ~10% of
	// the Z extent, the "recent slice of a simulation box" a user pulls
	// out of an archived run.
	_, _, zmax := spec.Coord(int64(spec.GridPoints - 1))
	lo := zmax - math.Floor(zmax/10)
	if lo < 1 {
		lo = 1
	}
	sql := fmt.Sprintf("SELECT X, SOIL FROM IparsData WHERE Z >= %g", lo)

	t := &Table{
		ID:     "sparseindex",
		Title:  "Sparse block index (sidecar zone maps) on a selective Z-window query (Ipars layout I)",
		Header: []string{"backend", "mode", "rows", "fs_MB", "served_MB", "blocks_skipped", "idx_hits", "time_ms"},
	}

	type pass struct {
		rows   int64
		digest uint64
		stats  extractor.Stats
		timeMS float64
	}
	// One cold execution: fresh service so the block cache starts empty
	// and every byte counted in FSBytesRead was really fetched. The
	// 64 KiB extraction buffer aligns extraction blocks with the
	// sidecar's zone blocks and the cache's fetch granularity.
	runCold := func(backend string, noSparse bool) (pass, error) {
		var p pass
		dur, err := timeBest(cfg, func() error {
			svc, err := core.Open(descPath, root)
			if err != nil {
				return err
			}
			defer svc.Close()
			svc.SetCacheConfig(cache.Config{BlockBytes: blockBytes, Backend: backend})
			prep, err := svc.Prepare(sql)
			if err != nil {
				return err
			}
			p.rows = 0
			h := fnv.New64a()
			var buf [8]byte
			p.stats, err = prep.Run(core.Options{BlockBytes: blockBytes, NoSparse: noSparse}, func(row table.Row) error {
				p.rows++
				for _, v := range row {
					binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.AsFloat()))
					h.Write(buf[:])
				}
				return nil
			})
			p.digest = h.Sum64()
			return err
		})
		p.timeMS = float64(dur.Microseconds()) / 1000
		return p, err
	}
	row := func(backend, mode string, p pass) {
		t.AddRow(backend, mode, fmt.Sprint(p.rows),
			fmt.Sprintf("%.1f", float64(p.stats.FSBytesRead)/1e6),
			fmt.Sprintf("%.1f", float64(p.stats.CacheBytesServed)/1e6),
			fmt.Sprint(p.stats.BlocksSkipped), fmt.Sprint(p.stats.SparseIndexHits),
			fmt.Sprintf("%.1f", p.timeMS))
	}

	var reduction float64
	for _, backend := range []string{cache.BackendPread, cache.BackendMmap} {
		off, err := runCold(backend, true)
		if err != nil {
			return nil, fmt.Errorf("sparseindex %s off: %w", backend, err)
		}
		on, err := runCold(backend, false)
		if err != nil {
			return nil, fmt.Errorf("sparseindex %s on: %w", backend, err)
		}
		row(backend, "index-off", off)
		row(backend, "index-on", on)
		if on.rows != off.rows || on.digest != off.digest {
			return nil, fmt.Errorf("sparseindex %s: rows diverge: off %d rows digest %x, on %d rows digest %x",
				backend, off.rows, off.digest, on.rows, on.digest)
		}
		if on.stats.BlocksSkipped == 0 {
			return nil, fmt.Errorf("sparseindex %s: indexed pass skipped 0 blocks", backend)
		}
		// The pread backend fetches blocks with positional reads and counts
		// them in FSBytesRead; the mmap backend serves pages zero-copy, so
		// physical traffic shows up as cache bytes served instead.
		offBytes, onBytes := off.stats.FSBytesRead, on.stats.FSBytesRead
		if onBytes == 0 && offBytes == 0 {
			offBytes, onBytes = off.stats.CacheBytesServed, on.stats.CacheBytesServed
		}
		if onBytes > 0 {
			r := float64(offBytes) / float64(onBytes)
			if reduction == 0 || r < reduction {
				reduction = r
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cold physical-byte reduction (index-off / index-on, worst backend): %.1fx", reduction),
		"all passes are cold: fresh service, empty block cache; rows verified byte-identical via FNV digest",
		fmt.Sprintf("zone blocks, cache blocks and extraction buffer all %d KiB, so a skipped block is a skipped fetch", blockBytes>>10))
	if !cfg.Quick && reduction < 5 {
		t.Notes = append(t.Notes, fmt.Sprintf("WARNING: fs-byte reduction %.1fx below the 5x target", reduction))
	}
	return t, nil
}
