module datavirt

go 1.22
