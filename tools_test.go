package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools drives every cmd/ binary through a realistic
// session: generate a dataset, inspect and convert its descriptor, emit
// generated code, query locally, start node servers, and submit a
// distributed query. Skipped under -short (each `go run` compiles).
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("go run per tool is slow")
	}
	root := t.TempDir()
	run := func(wantFail bool, args ...string) string {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run"}, args...)...)
		cmd.Dir = mustGetwd(t)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		if (err != nil) != wantFail {
			t.Fatalf("go run %v: err=%v\n%s", args, err, out.String())
		}
		return out.String()
	}

	// dvgen: a 2-node IPARS study and a Titan dataset.
	out := run(false, "./cmd/dvgen", "-dataset", "ipars", "-layout", "CLUSTER",
		"-out", root, "-parts", "2", "-rel", "2", "-steps", "8", "-grid", "40", "-attrs", "4")
	if !strings.Contains(out, "wrote IPARS dataset (640 rows") {
		t.Fatalf("dvgen ipars: %s", out)
	}
	out = run(false, "./cmd/dvgen", "-dataset", "titan", "-out", root,
		"-points", "3000", "-tiles", "2x2x2")
	if !strings.Contains(out, "wrote TITAN dataset (3000 points") {
		t.Fatalf("dvgen titan: %s", out)
	}
	desc := filepath.Join(root, "ipars_cluster.dvd")

	// dvdesc: summary, then text→XML→summary.
	out = run(false, "./cmd/dvdesc", "-in", desc)
	if !strings.Contains(out, "descriptor: valid") || !strings.Contains(out, "2 nodes") {
		t.Fatalf("dvdesc: %s", out)
	}
	xmlOut := run(false, "./cmd/dvdesc", "-in", desc, "-to", "xml")
	xmlPath := filepath.Join(root, "ipars.xml")
	if err := os.WriteFile(xmlPath, []byte(xmlOut), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(false, "./cmd/dvdesc", "-in", xmlPath)
	if !strings.Contains(out, "descriptor: valid") {
		t.Fatalf("dvdesc xml: %s", out)
	}

	// dvcodegen: emitted source has the marker and an Index function.
	out = run(false, "./cmd/dvcodegen", "-desc", desc, "-pkg", "genx")
	if !strings.Contains(out, "DO NOT EDIT") || !strings.Contains(out, "func Index(") {
		t.Fatalf("dvcodegen: %s", out)
	}

	// dvq: local query over both descriptor forms, plus explain.
	out = run(false, "./cmd/dvq", "-desc", desc, "-root", root, "-quiet",
		"SELECT SOIL FROM IparsData WHERE TIME = 3")
	if !strings.Contains(out, "80 rows") {
		t.Fatalf("dvq: %s", out)
	}
	out = run(false, "./cmd/dvq", "-desc", xmlPath, "-root", root, "-quiet",
		"SELECT SOIL FROM IparsData WHERE TIME = 3")
	if !strings.Contains(out, "80 rows") {
		t.Fatalf("dvq xml: %s", out)
	}
	out = run(false, "./cmd/dvq", "-desc", desc, "-root", root, "-explain",
		"SELECT * FROM IparsData WHERE REL = 1")
	if !strings.Contains(out, "aligned file chunks: 16") {
		t.Fatalf("dvq explain: %s", out)
	}
	// Titan via its descriptor.
	out = run(false, "./cmd/dvq", "-desc", filepath.Join(root, "titan.dvd"),
		"-root", root, "-quiet", "SELECT * FROM TitanData WHERE S1 < 0.5")
	if !strings.Contains(out, "rows in") {
		t.Fatalf("dvq titan: %s", out)
	}
	// Errors exit non-zero.
	run(true, "./cmd/dvq", "-desc", desc, "-root", root, "not sql")
	run(true, "./cmd/dvdesc", "-in", filepath.Join(root, "missing.dvd"))

	// dvnode + dvsubmit: build the binaries once (go run would orphan the
	// servers), start two nodes, submit a distributed query.
	bin := t.TempDir()
	for _, tool := range []string{"dvnode", "dvsubmit"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Dir = mustGetwd(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	type nodeProc struct {
		cmd  *exec.Cmd
		addr string
	}
	var nodes []nodeProc
	for i, port := range []string{"127.0.0.1:39071", "127.0.0.1:39072"} {
		cmd := exec.Command(filepath.Join(bin, "dvnode"),
			"-desc", desc, "-root", root, "-node", fmt.Sprintf("node%d", i), "-addr", port)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		// Wait for the "serving" banner.
		buf := make([]byte, 256)
		if _, err := stdout.Read(buf); err != nil {
			t.Fatalf("node %d banner: %v", i, err)
		}
		nodes = append(nodes, nodeProc{cmd: cmd, addr: port})
	}
	sub := exec.Command(filepath.Join(bin, "dvsubmit"),
		"-desc", desc,
		"-nodes", "node0="+nodes[0].addr+",node1="+nodes[1].addr,
		"-quiet",
		"SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 3")
	subOut, err := sub.CombinedOutput()
	if err != nil {
		t.Fatalf("dvsubmit: %v\n%s", err, subOut)
	}
	if !strings.Contains(string(subOut), "160 rows") {
		t.Fatalf("dvsubmit output: %s", subOut)
	}
	// Partitioned submission.
	sub2 := exec.Command(filepath.Join(bin, "dvsubmit"),
		"-desc", desc,
		"-nodes", "node0="+nodes[0].addr+",node1="+nodes[1].addr,
		"-quiet", "-partition", "hash", "-dests", "2", "-attr", "TIME",
		"SELECT TIME FROM IparsData")
	sub2Out, err := sub2.CombinedOutput()
	if err != nil {
		t.Fatalf("dvsubmit partitioned: %v\n%s", err, sub2Out)
	}
	if !strings.Contains(string(sub2Out), "640 rows") {
		t.Fatalf("dvsubmit partitioned output: %s", sub2Out)
	}
}

func mustGetwd(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}
