// Command dvbench regenerates the paper's evaluation: one experiment
// per table/figure of §5, printed in paper-table form. Datasets are
// generated into (and reused from) the work directory.
//
// Usage:
//
//	dvbench -workdir /tmp/dvbench -exp all
//	dvbench -exp fig6 -scale 0.5
//	dvbench -exp cache -json BENCH_cache.json
//	dvbench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"datavirt/internal/bench"
	"datavirt/internal/cache"
)

func main() {
	workdir := flag.String("workdir", "dvbench-work", "dataset/workspace directory (reused across runs)")
	exp := flag.String("exp", "all", "experiment id or 'all' (see -list)")
	scale := flag.Float64("scale", 1.0, "dataset size multiplier")
	quick := flag.Bool("quick", false, "tiny smoke-test sizes")
	trials := flag.Int("trials", 2, "timed repetitions per measurement (minimum reported)")
	verbose := flag.Bool("v", true, "progress to stderr")
	list := flag.Bool("list", false, "list experiments and the paper queries, then exit")
	verify := flag.Bool("verify", false, "cross-check systems on a small sample before timing")
	jsonPath := flag.String("json", "", "also write the result tables as JSON to this file")
	cacheBackend := flag.String("cache-backend", "", "block cache backend for experiments that do not compare backends themselves: pread, mmap or auto")
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		return
	}

	if _, err := cache.ResolveBackend(*cacheBackend); err != nil {
		fatal(err)
	}
	cfg := bench.Config{
		WorkDir: *workdir, Scale: *scale, Quick: *quick,
		Trials: *trials, Verbose: *verbose,
		CacheBackend: *cacheBackend,
	}
	if err := os.MkdirAll(*workdir, 0o755); err != nil {
		fatal(err)
	}
	if *verify {
		fmt.Fprintln(os.Stderr, "dvbench: verifying cross-system agreement ...")
		if err := bench.Verify(cfg); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "dvbench: verification passed")
	}

	var toRun []bench.Experiment
	if *exp == "all" {
		toRun = bench.Experiments()
	} else {
		e, ok := bench.Lookup(*exp)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q; try -list", *exp))
		}
		toRun = []bench.Experiment{e}
	}
	var tables []*bench.Table
	for _, e := range toRun {
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		tables = append(tables, tbl)
		fmt.Println(tbl.Format())
		fmt.Fprintf(os.Stderr, "dvbench: %s finished in %s\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		out, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dvbench: wrote %s\n", *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvbench:", err)
	os.Exit(1)
}
