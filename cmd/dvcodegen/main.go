// Command dvcodegen emits the generated Go source for a meta-data
// descriptor: the compile-time-specialized index function described in
// the paper, with every file path, loop bound, byte offset and stride
// resolved to a constant.
//
// Usage:
//
//	dvcodegen -desc dataset.dvd -pkg genipars -o genipars/ipars_gen.go
package main

import (
	"flag"
	"fmt"
	"os"

	"datavirt/internal/afc"
	"datavirt/internal/codegen"
	"datavirt/internal/metadata"
)

func main() {
	desc := flag.String("desc", "", "path to the meta-data descriptor")
	pkg := flag.String("pkg", "generated", "package name for the emitted source")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if *desc == "" {
		fmt.Fprintln(os.Stderr, "usage: dvcodegen -desc FILE [-pkg NAME] [-o FILE]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	d, err := metadata.ParseFile(*desc)
	if err != nil {
		fatal(err)
	}
	plan, err := afc.Compile(d)
	if err != nil {
		fatal(err)
	}
	code, err := codegen.Emit(plan, *pkg)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dvcodegen: wrote %s (%d bytes)\n", *out, len(code))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvcodegen:", err)
	os.Exit(1)
}
