// Command dvnode runs one STORM node server: it owns the files whose
// storage directories name this node and answers query requests from a
// coordinator (dvsubmit) over TCP.
//
// Usage:
//
//	dvnode -desc dataset.dvd -root /data -node node0 -addr 127.0.0.1:7070
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"datavirt/internal/cache"
	"datavirt/internal/cluster"
	"datavirt/internal/core"
	"datavirt/internal/obs"
)

func main() {
	desc := flag.String("desc", "", "path to the meta-data descriptor")
	root := flag.String("root", ".", "data root directory")
	nodeName := flag.String("node", "", "cluster node name served (must appear in the descriptor's DIR table)")
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	slow := flag.Duration("slow", 0, "log query stages slower than this threshold (0 = disabled)")
	trace := flag.Bool("trace", false, "log every query stage (implies -slow 0s for all stages)")
	cacheMB := flag.Int("cache-mb", 64, "block cache budget in MiB (0 disables block caching; handles stay pooled)")
	cacheBlock := flag.Int("cache-block", 256<<10, "block cache block size in bytes")
	cacheBackend := flag.String("cache-backend", "", "block cache backend: pread, mmap or auto (default $DATAVIRT_CACHE_BACKEND, then pread)")
	readahead := flag.Int("readahead", 0, "blocks to prefetch ahead of sequential scans (0 = off)")
	planCache := flag.Bool("plan-cache", true, "memoize query plans by semantic fingerprint (range-equal queries share one plan)")
	planCacheEntries := flag.Int("plan-cache-entries", core.DefaultPlanCacheEntries, "plan cache capacity in entries")
	maxConcurrent := flag.Int("max-concurrent", 0, "queries executing at once across all sessions (0 = 2x GOMAXPROCS, at least 4)")
	maxQueue := flag.Int("max-queue", 0, "admission queue depth beyond which arrivals are shed busy (0 = 64, negative = no queue)")
	flag.Parse()

	if *desc == "" || *nodeName == "" {
		fmt.Fprintln(os.Stderr, "usage: dvnode -desc FILE -node NAME [-root DIR] [-addr HOST:PORT]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	svc, err := core.Open(*desc, *root)
	if err != nil {
		fatal(err)
	}
	// AllNodes, not Nodes: a replica-only standby never owns a DIR
	// entry but is still a legitimate server for the partitions whose
	// NODES sets list it.
	known := false
	for _, n := range svc.AllNodes() {
		if n == *nodeName {
			known = true
		}
	}
	if !known {
		fatal(fmt.Errorf("node %q is not in the descriptor's storage table %v", *nodeName, svc.AllNodes()))
	}
	if _, err := cache.ResolveBackend(*cacheBackend); err != nil {
		fatal(err)
	}
	svc.SetCacheConfig(cache.Config{
		MaxBytes:   int64(*cacheMB) << 20,
		BlockBytes: *cacheBlock,
		Backend:    *cacheBackend,
		Readahead:  *readahead,
		Disabled:   *cacheMB == 0,
	})
	svc.SetPlanCacheConfig(core.PlanCacheConfig{
		MaxEntries: *planCacheEntries,
		Disabled:   !*planCache,
	})
	node, err := cluster.StartNode(context.Background(), *nodeName, svc, *addr)
	if err != nil {
		fatal(err)
	}
	node.MaxConcurrent = *maxConcurrent
	node.MaxQueue = *maxQueue
	if *trace || *slow > 0 {
		threshold := *slow
		if *trace {
			threshold = 0
		}
		node.Tracer = &obs.LogTracer{Logf: log.Printf, Slow: threshold}
	}
	fmt.Printf("dvnode: serving %s (%s) on %s\n", *nodeName, svc.TableName(), node.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("dvnode: shutting down")
	if err := node.Close(); err != nil {
		fatal(err)
	}
	cs := svc.CacheStats()
	if cs.Hits+cs.Misses > 0 {
		fmt.Printf("dvnode: cache %d hits / %d misses, %d evictions, %.1f MB read, %.1f MB saved\n",
			cs.Hits, cs.Misses, cs.Evictions, float64(cs.BytesRead)/1e6, float64(cs.BytesSaved())/1e6)
	}
	if q, shed := node.AdmissionCounters(); q+shed > 0 {
		fmt.Printf("dvnode: admission %d queries queued, %d shed\n", q, shed)
	}
	ps := svc.PlanCacheStats()
	if ps.Hits+ps.Misses > 0 {
		fmt.Printf("dvnode: plans %d hits / %d misses, %d evictions, %d entries\n",
			ps.Hits, ps.Misses, ps.Evictions, ps.Entries)
	}
	svc.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvnode:", err)
	os.Exit(1)
}
