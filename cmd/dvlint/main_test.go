package main

import (
	"bytes"
	"os"
	"testing"

	"datavirt/internal/lint"
)

// TestAnalyzerManifest pins the registered suite to the checked-in
// manifest: adding, removing or renaming an analyzer must update
// analyzers.txt in the same change (CI diffs `dvlint -list` against
// it too, so the text format and the file stay in lockstep).
func TestAnalyzerManifest(t *testing.T) {
	want, err := os.ReadFile("analyzers.txt")
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	var got bytes.Buffer
	if err := printAnalyzers(&got, false); err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Errorf("analyzers.txt is stale; regenerate with `go run ./cmd/dvlint -list > cmd/dvlint/analyzers.txt`\n--- manifest ---\n%s--- dvlint -list ---\n%s", want, got.String())
	}
}

// TestManifestCoversAll guards the manifest's completeness the other
// way: every analyzer in the suite appears exactly once.
func TestManifestCoversAll(t *testing.T) {
	data, err := os.ReadFile("analyzers.txt")
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	for _, a := range lint.All() {
		if n := bytes.Count(data, []byte(a.Name+"\t")); n != 1 {
			t.Errorf("analyzer %s appears %d times in analyzers.txt, want 1", a.Name, n)
		}
	}
}
