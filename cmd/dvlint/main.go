// Command dvlint is the project's static-analysis multichecker: it
// runs the internal/lint analyzer suite (ctxflow, lockio, statssync,
// closecheck, guardedby, golife, frameproto, ignorereason) over module
// packages and exits non-zero on any finding. It is self-contained —
// type information comes from the stdlib go/types checker with a
// source importer, so it needs no network, module cache or external
// tooling.
//
// Usage:
//
//	dvlint [-json] [-only analyzer[,analyzer]] ./...
//	dvlint ./internal/cache ./internal/core
//	dvlint -list              # print the registered analyzers (JSON with -json)
//	dvlint -generate          # rewrite the stats merge code from the structs
//	dvlint -generate -check   # exit 1 if the generated files are stale
//
// -list prints one analyzer per line as "name<TAB>doc"; CI diffs it
// against the checked-in manifest (cmd/dvlint/analyzers.txt) so the
// registered suite cannot change silently.
//
// Suppress a finding with a comment on the same line or the line
// above: //dvlint:ignore <analyzer> <reason>
//
// -generate derives obs.QueryStats.Add and the cluster trailer merge
// from the struct definitions (see internal/lint/generate.go), so a
// newly added counter can never be silently dropped from either merge.
// CI runs -generate -check to keep the committed files fresh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"datavirt/internal/lint"
)

func main() {
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array")
	only := flag.String("only", "", "comma-separated analyzer subset to run")
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	generate := flag.Bool("generate", false, "regenerate the stats merge files instead of linting")
	check := flag.Bool("check", false, "with -generate: verify freshness without writing, exit 1 on drift")
	flag.Parse()

	if *list {
		if err := printAnalyzers(os.Stdout, *asJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *generate {
		moduleDir, modulePath, err := findModule()
		if err != nil {
			fatal(err)
		}
		if err := runGenerate(moduleDir, modulePath, *check); err != nil {
			fatal(err)
		}
		return
	}
	if *check {
		fatal(fmt.Errorf("-check requires -generate"))
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fatal(fmt.Errorf("unknown analyzer %q", name))
			}
			analyzers = append(analyzers, a)
		}
	}

	moduleDir, modulePath, err := findModule()
	if err != nil {
		fatal(err)
	}
	dirs, err := targetDirs(moduleDir, flag.Args())
	if err != nil {
		fatal(err)
	}

	loader := lint.NewLoader(moduleDir, modulePath)
	var all []lint.Diagnostic
	for _, rel := range dirs {
		importPath := modulePath
		if rel != "." {
			importPath = modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(filepath.Join(moduleDir, rel), importPath)
		if err != nil {
			fatal(err)
		}
		diags, err := lint.Run(loader, pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		all = append(all, diags...)
	}

	if *asJSON {
		if all == nil {
			all = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

// printAnalyzers renders the registered suite, one "name<TAB>doc" line
// per analyzer (a JSON array of {name, doc} objects with -json). The
// text form is the manifest format CI pins.
func printAnalyzers(w io.Writer, asJSON bool) error {
	if asJSON {
		type entry struct {
			Name string `json:"name"`
			Doc  string `json:"doc"`
		}
		var out []entry
		for _, a := range lint.All() {
			out = append(out, entry{Name: a.Name, Doc: a.Doc})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	for _, a := range lint.All() {
		if _, err := fmt.Fprintf(w, "%s\t%s\n", a.Name, a.Doc); err != nil {
			return err
		}
	}
	return nil
}

// runGenerate rewrites (or, with check, verifies) the generated stats
// merge files.
func runGenerate(moduleDir, modulePath string, check bool) error {
	files, err := lint.GeneratedStatsFiles(moduleDir, modulePath)
	if err != nil {
		return err
	}
	stale := 0
	for rel, want := range files {
		abs := filepath.Join(moduleDir, filepath.FromSlash(rel))
		have, readErr := os.ReadFile(abs)
		if readErr == nil && string(have) == string(want) {
			continue
		}
		if check {
			fmt.Fprintf(os.Stderr, "dvlint: %s is stale; run dvlint -generate\n", rel)
			stale++
			continue
		}
		if err := os.WriteFile(abs, want, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", rel)
	}
	if stale > 0 {
		os.Exit(1)
	}
	return nil
}

// findModule locates the enclosing go.mod and reads the module path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("dvlint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("dvlint: no go.mod found")
		}
		dir = parent
	}
}

// targetDirs resolves the command-line patterns to module-relative
// package directories. "./..." (or no argument) means every package in
// the module; "dir/..." expands recursively; anything else is taken as
// one directory.
func targetDirs(moduleDir string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var out []string
	seen := map[string]bool{}
	add := func(rel string) {
		rel = filepath.Clean(rel)
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, arg := range args {
		if rest, ok := strings.CutSuffix(arg, "..."); ok {
			root := filepath.Join(moduleDir, filepath.Clean(strings.TrimSuffix(rest, "/")))
			subdirs, err := lint.ModulePackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range subdirs {
				rel, err := filepath.Rel(moduleDir, filepath.Join(root, d))
				if err != nil {
					return nil, err
				}
				add(rel)
			}
			continue
		}
		p := filepath.Clean(arg)
		if filepath.IsAbs(p) {
			rel, err := filepath.Rel(moduleDir, p)
			if err != nil {
				return nil, err
			}
			p = rel
		}
		add(p)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvlint:", err)
	os.Exit(1)
}
