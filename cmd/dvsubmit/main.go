// Command dvsubmit is the remote client of the distributed system: it
// submits a SQL query to the node servers of a cluster, merges the
// returned tuple streams, and optionally partitions tuples among
// simulated client processors (the paper's partition generation and
// data mover services).
//
// Usage:
//
//	dvsubmit -desc dataset.dvd -nodes node0=127.0.0.1:7070,node1=127.0.0.1:7071 \
//	         "SELECT * FROM IparsData WHERE TIME > 1000"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"datavirt/internal/cluster"
	"datavirt/internal/metadata"
	"datavirt/internal/storm"
	"datavirt/internal/table"
)

func main() {
	desc := flag.String("desc", "", "path to the meta-data descriptor")
	nodes := flag.String("nodes", "", "comma-separated node address table: name=host:port,...")
	quiet := flag.Bool("quiet", false, "suppress rows; print only the summary")
	scheme := flag.String("partition", "", "client partition scheme: roundrobin, hash, or range")
	dests := flag.Int("dests", 1, "number of client processors")
	attr := flag.String("attr", "", "partitioning attribute (hash/range)")
	bounds := flag.String("bounds", "", "comma-separated range boundaries (range)")
	stats := flag.Bool("stats", false, "print per-stage query statistics after the summary")
	timeout := flag.Duration("timeout", 0, "cancel the query after this duration (0 = none)")
	stall := flag.Duration("stall", 0, "fail a node leg whose stream makes no frame progress within this duration and re-dispatch it (0 = off)")
	flag.Parse()

	if *desc == "" || *nodes == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dvsubmit -desc FILE -nodes NAME=ADDR,... [flags] \"SELECT ...\"")
		flag.PrintDefaults()
		os.Exit(2)
	}
	sql := flag.Arg(0)

	d, err := metadata.ParseFile(*desc)
	if err != nil {
		fatal(err)
	}
	addrs := map[string]string{}
	for _, pair := range strings.Split(*nodes, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			fatal(fmt.Errorf("bad -nodes entry %q", pair))
		}
		addrs[name] = addr
	}
	coord, err := cluster.NewCoordinator(d, addrs)
	if err != nil {
		fatal(err)
	}
	coord.LegStallAfter = *stall
	defer coord.Close()

	// Ctrl-C cancels the in-flight query; -timeout bounds it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	out := bufio.NewWriterSize(os.Stdout, 1<<16)
	defer out.Flush()

	if *scheme == "" {
		rows, err := coord.QueryContext(ctx, sql)
		if err != nil {
			fatal(err)
		}
		defer rows.Close()
		var n int64
		for rows.Next() {
			n++
			if *quiet {
				continue
			}
			if _, err := fmt.Fprintln(out, table.FormatRow(rows.Row())); err != nil {
				fatal(err)
			}
		}
		if err := rows.Err(); err != nil {
			fatal(err)
		}
		rows.Close()
		out.Flush()
		fmt.Fprintf(os.Stderr, "%d rows in %s from %d nodes\n",
			n, time.Since(start).Round(time.Millisecond), len(coord.Nodes()))
		if *stats {
			fmt.Fprintln(os.Stderr, "  "+strings.ReplaceAll(rows.Stats().String(), "\n", "\n  "))
		}
		return
	}

	spec := storm.PartitionSpec{NumDests: *dests, Attr: *attr}
	switch *scheme {
	case "roundrobin":
		spec.Scheme = storm.RoundRobin
	case "hash":
		spec.Scheme = storm.HashAttr
	case "range":
		spec.Scheme = storm.RangeAttr
		for _, b := range strings.Split(*bounds, ",") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(b), "%g", &v); err != nil {
				fatal(fmt.Errorf("bad -bounds entry %q", b))
			}
			spec.Bounds = append(spec.Bounds, v)
		}
	default:
		fatal(fmt.Errorf("unknown partition scheme %q", *scheme))
	}
	sinks := make([]storm.Sink, *dests)
	counts := make([]int64, *dests)
	for i := range sinks {
		i := i
		sinks[i] = storm.FuncSink(func(r table.Row) error {
			counts[i]++
			if *quiet {
				return nil
			}
			_, err := fmt.Fprintf(out, "dest%d\t%s\n", i, table.FormatRow(r))
			return err
		})
	}
	res, err := coord.QueryPartitionedContext(ctx, sql, spec, sinks)
	if err != nil {
		fatal(err)
	}
	out.Flush()
	fmt.Fprintf(os.Stderr, "%d rows in %s; per destination: %v; per node: %v\n",
		res.Rows, time.Since(start).Round(time.Millisecond), counts, res.PerNode)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvsubmit:", err)
	os.Exit(1)
}
