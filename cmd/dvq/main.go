// Command dvq runs a SQL query against a virtualized dataset: it loads
// a meta-data descriptor, compiles the data service, executes the query
// over the flat files under the data root, and prints the resulting
// virtual-table rows.
//
// Usage:
//
//	dvq -desc dataset.dvd -root /data "SELECT * FROM IparsData WHERE TIME > 1000"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"datavirt/internal/core"
	"datavirt/internal/table"
)

func main() {
	desc := flag.String("desc", "", "path to the meta-data descriptor")
	root := flag.String("root", ".", "data root directory (holds <node>/<dir>/<file>)")
	parallel := flag.Bool("parallel", false, "extract aligned file chunks with a worker pool")
	workers := flag.Int("workers", 0, "worker pool size (0 = automatic)")
	quiet := flag.Bool("quiet", false, "suppress rows; print only the summary")
	header := flag.Bool("header", true, "print a column header line")
	explain := flag.Bool("explain", false, "print the query plan (ranges and aligned file chunks) instead of rows")
	interactive := flag.Bool("i", false, "interactive mode: read queries from stdin, one per line")
	flag.Parse()

	if *desc == "" || (flag.NArg() != 1 && !*interactive) {
		fmt.Fprintln(os.Stderr, "usage: dvq -desc FILE [-root DIR] [flags] \"SELECT ...\"   or   dvq -desc FILE -i")
		flag.PrintDefaults()
		os.Exit(2)
	}

	svc, err := core.Open(*desc, *root)
	if err != nil {
		fatal(err)
	}

	if *interactive {
		fmt.Fprintf(os.Stderr, "dvq: table %s (%s); enter SQL, one statement per line (ctrl-D to quit)\n",
			svc.TableName(), strings.Join(svc.Schema().Names(), ", "))
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for {
			fmt.Fprint(os.Stderr, "dvq> ")
			if !sc.Scan() {
				fmt.Fprintln(os.Stderr)
				return
			}
			sql := strings.TrimSpace(sc.Text())
			if sql == "" {
				continue
			}
			if sql == "quit" || sql == "exit" || sql == `\q` {
				return
			}
			prep, err := svc.Prepare(sql)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvq:", err)
				continue
			}
			if err := runPrepared(svc, prep, *parallel, *workers, *quiet, *header, *explain); err != nil {
				fmt.Fprintln(os.Stderr, "dvq:", err)
			}
		}
	}

	sql := flag.Arg(0)
	prep, err := svc.Prepare(sql)
	if err != nil {
		fatal(err)
	}
	if err := runPrepared(svc, prep, *parallel, *workers, *quiet, *header, *explain); err != nil {
		fatal(err)
	}
}

// runPrepared executes (or explains) one prepared query.
func runPrepared(svc *core.Service, prep *core.Prepared, parallel bool, workers int, quiet, header, explain bool) error {
	if explain {
		fmt.Printf("table: %s\ncolumns: %s\nranges: %s\naligned file chunks: %d\n",
			svc.TableName(), strings.Join(prep.Cols, ", "), prep.Ranges, len(prep.AFCs))
		limit := 20
		for i := range prep.AFCs {
			if i >= limit {
				fmt.Printf("... %d more\n", len(prep.AFCs)-limit)
				break
			}
			fmt.Println("  " + prep.AFCs[i].String())
		}
		return nil
	}

	out := bufio.NewWriterSize(os.Stdout, 1<<16)
	defer out.Flush()
	if header && !quiet {
		fmt.Fprintln(out, strings.Join(prep.Cols, "\t"))
	}
	var rows int64
	start := time.Now()
	stats, err := prep.Run(core.Options{Parallel: parallel, Workers: workers},
		func(r table.Row) error {
			rows++
			if quiet {
				return nil
			}
			_, err := fmt.Fprintln(out, table.FormatRow(r))
			return err
		})
	if err != nil {
		return err
	}
	out.Flush()
	fmt.Fprintf(os.Stderr, "%d rows in %s (scanned %d rows, read %.1f MB, %d aligned file chunks)\n",
		rows, time.Since(start).Round(time.Millisecond),
		stats.RowsScanned, float64(stats.BytesRead)/1e6, stats.AFCs)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvq:", err)
	os.Exit(1)
}
