// Command dvq runs a SQL query against a virtualized dataset: it loads
// a meta-data descriptor, compiles the data service, executes the query
// over the flat files under the data root, and prints the resulting
// virtual-table rows. With -nodes it becomes a cluster client instead,
// submitting the query to the named node servers through a coordinator.
//
// Usage:
//
//	dvq -desc dataset.dvd -root /data "SELECT * FROM IparsData WHERE TIME > 1000"
//	dvq -desc dataset.dvd -nodes node0=127.0.0.1:7070,node1=127.0.0.1:7071 \
//	    -stats -timeout 30s "SELECT * FROM IparsData WHERE TIME > 1000"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"datavirt/internal/cache"
	"datavirt/internal/cluster"
	"datavirt/internal/core"
	"datavirt/internal/metadata"
	"datavirt/internal/table"
)

// config carries the execution flags through both query paths.
type config struct {
	parallel bool
	workers  int
	quiet    bool
	header   bool
	explain  bool
	stats    bool
	scalar   bool
	timeout  time.Duration

	cacheMB      int
	cacheBlock   int
	cacheBackend string
	readahead    int
	noCache      bool
	noSparse     bool

	planCache        bool
	planCacheEntries int

	poolSize   int
	hedgeAfter time.Duration
	legStall   time.Duration
	stageMB    int
}

// cacheConfig translates the cache flags into a cache.Config.
func (c config) cacheConfig() cache.Config {
	return cache.Config{
		MaxBytes:   int64(c.cacheMB) << 20,
		BlockBytes: c.cacheBlock,
		Backend:    c.cacheBackend,
		Readahead:  c.readahead,
		Disabled:   c.cacheMB == 0,
	}
}

// planCacheConfig translates the plan-cache flags.
func (c config) planCacheConfig() core.PlanCacheConfig {
	return core.PlanCacheConfig{
		MaxEntries: c.planCacheEntries,
		Disabled:   !c.planCache,
	}
}

func main() {
	desc := flag.String("desc", "", "path to the meta-data descriptor")
	root := flag.String("root", ".", "data root directory (holds <node>/<dir>/<file>)")
	nodes := flag.String("nodes", "", "run distributed: comma-separated node address table name=host:port,...")
	var cfg config
	flag.BoolVar(&cfg.parallel, "parallel", false, "extract aligned file chunks with a worker pool")
	flag.IntVar(&cfg.workers, "workers", 0, "worker pool size (0 = automatic)")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress rows; print only the summary")
	flag.BoolVar(&cfg.header, "header", true, "print a column header line")
	flag.BoolVar(&cfg.explain, "explain", false, "print the query plan (ranges and aligned file chunks) instead of rows")
	flag.BoolVar(&cfg.stats, "stats", false, "print per-stage query statistics after the summary")
	flag.BoolVar(&cfg.scalar, "scalar-filter", false, "evaluate WHERE per row instead of vectorized (diagnostic)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "cancel the query after this duration (0 = none)")
	flag.IntVar(&cfg.cacheMB, "cache-mb", 64, "block cache budget in MiB (0 disables block caching; handles stay pooled)")
	flag.IntVar(&cfg.cacheBlock, "cache-block", 256<<10, "block cache block size in bytes")
	flag.StringVar(&cfg.cacheBackend, "cache-backend", "", "block cache backend: pread, mmap or auto (default $DATAVIRT_CACHE_BACKEND, then pread)")
	flag.IntVar(&cfg.readahead, "readahead", 0, "blocks to prefetch ahead of sequential scans (0 = off)")
	flag.BoolVar(&cfg.noCache, "no-cache", false, "bypass the block cache for this query")
	flag.BoolVar(&cfg.noSparse, "no-sparse", false, "ignore sparse block-index sidecars (no data skipping)")
	flag.BoolVar(&cfg.planCache, "plan-cache", true, "memoize query plans by semantic fingerprint (range-equal queries share one plan)")
	flag.IntVar(&cfg.planCacheEntries, "plan-cache-entries", core.DefaultPlanCacheEntries, "plan cache capacity in entries")
	flag.IntVar(&cfg.poolSize, "pool", 0, "with -nodes: persistent sessions per node (0 = default 2, negative = one connection per query)")
	flag.DurationVar(&cfg.hedgeAfter, "hedge", 0, "with -nodes: hedge a node leg that has not answered within this duration (0 = off)")
	flag.DurationVar(&cfg.legStall, "stall", 0, "with -nodes: fail a node leg whose stream makes no frame progress within this duration and re-dispatch it (0 = off)")
	flag.IntVar(&cfg.stageMB, "failover-stage-mb", 0, "with -nodes: MiB of a replicated leg's results to withhold for exactly-once failover replay (0 = default 8)")
	interactive := flag.Bool("i", false, "interactive mode: read queries from stdin, one per line")
	flag.Parse()

	if *desc == "" || (flag.NArg() != 1 && !*interactive) {
		fmt.Fprintln(os.Stderr, "usage: dvq -desc FILE [-root DIR | -nodes NAME=ADDR,...] [flags] \"SELECT ...\"   or   dvq -desc FILE -i")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if _, err := cache.ResolveBackend(cfg.cacheBackend); err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the in-flight query instead of killing the process
	// mid-write; a second interrupt terminates as usual.
	baseCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *nodes != "" {
		if *interactive {
			fatal(fmt.Errorf("-i is not supported with -nodes"))
		}
		runCluster(baseCtx, *desc, *nodes, flag.Arg(0), cfg)
		return
	}

	svc, err := core.Open(*desc, *root)
	if err != nil {
		fatal(err)
	}
	svc.SetCacheConfig(cfg.cacheConfig())
	svc.SetPlanCacheConfig(cfg.planCacheConfig())
	defer svc.Close()

	if *interactive {
		fmt.Fprintf(os.Stderr, "dvq: table %s (%s); enter SQL, one statement per line (ctrl-D to quit)\n",
			svc.TableName(), strings.Join(svc.Schema().Names(), ", "))
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for {
			fmt.Fprint(os.Stderr, "dvq> ")
			if !sc.Scan() {
				fmt.Fprintln(os.Stderr)
				return
			}
			sql := strings.TrimSpace(sc.Text())
			if sql == "" {
				continue
			}
			if sql == "quit" || sql == "exit" || sql == `\q` {
				return
			}
			if err := runLocal(baseCtx, svc, sql, cfg); err != nil {
				fmt.Fprintln(os.Stderr, "dvq:", err)
			}
		}
	}

	if err := runLocal(baseCtx, svc, flag.Arg(0), cfg); err != nil {
		fatal(err)
	}
}

// queryCtx derives the per-query context from the timeout flag.
func queryCtx(ctx context.Context, cfg config) (context.Context, context.CancelFunc) {
	if cfg.timeout > 0 {
		return context.WithTimeout(ctx, cfg.timeout)
	}
	return context.WithCancel(ctx)
}

// runLocal executes (or explains) one query against local files using
// the streaming Rows API.
func runLocal(ctx context.Context, svc *core.Service, sql string, cfg config) error {
	ctx, cancel := queryCtx(ctx, cfg)
	defer cancel()

	prep, err := svc.PrepareContext(ctx, sql)
	if err != nil {
		return err
	}
	if cfg.explain {
		fmt.Printf("table: %s\ncolumns: %s\nranges: %s\naligned file chunks: %d\n",
			svc.TableName(), strings.Join(prep.Cols, ", "), prep.Ranges, len(prep.AFCs))
		limit := 20
		for i := range prep.AFCs {
			if i >= limit {
				fmt.Printf("... %d more\n", len(prep.AFCs)-limit)
				break
			}
			fmt.Println("  " + prep.AFCs[i].String())
		}
		return nil
	}

	out := bufio.NewWriterSize(os.Stdout, 1<<16)
	defer out.Flush()
	if cfg.header && !cfg.quiet {
		fmt.Fprintln(out, strings.Join(prep.Cols, "\t"))
	}
	start := time.Now()
	rows, err := prep.QueryContext(ctx, core.Options{
		Parallel: cfg.parallel, Workers: cfg.workers, NoCache: cfg.noCache, NoSparse: cfg.noSparse,
		ScalarFilter: cfg.scalar,
	})
	if err != nil {
		return err
	}
	defer rows.Close()
	var n int64
	for rows.Next() {
		n++
		if cfg.quiet {
			continue
		}
		if _, err := fmt.Fprintln(out, table.FormatRow(rows.Row())); err != nil {
			return err
		}
	}
	if err := rows.Err(); err != nil {
		return err
	}
	rows.Close()
	out.Flush()
	st := rows.Stats()
	fmt.Fprintf(os.Stderr, "%d rows in %s (scanned %d rows, read %.1f MB, %d aligned file chunks)\n",
		n, time.Since(start).Round(time.Millisecond),
		st.RowsScanned, float64(st.BytesRead)/1e6, st.ChunksRead)
	if cfg.stats {
		fmt.Fprintln(os.Stderr, indent(st.String()))
	}
	return nil
}

// runCluster submits the query to the node servers through a
// coordinator and prints the merged stream.
func runCluster(ctx context.Context, descPath, nodeTable, sql string, cfg config) {
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		fatal(err)
	}
	addrs := map[string]string{}
	for _, pair := range strings.Split(nodeTable, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			fatal(fmt.Errorf("bad -nodes entry %q", pair))
		}
		addrs[name] = addr
	}
	coord, err := cluster.NewCoordinator(d, addrs)
	if err != nil {
		fatal(err)
	}
	coord.SetPlanCacheConfig(cfg.planCacheConfig())
	coord.PoolSize = cfg.poolSize
	coord.HedgeAfter = cfg.hedgeAfter
	coord.LegStallAfter = cfg.legStall
	coord.FailoverStageBytes = int64(cfg.stageMB) << 20
	defer coord.Close()

	ctx, cancel := queryCtx(ctx, cfg)
	defer cancel()
	out := bufio.NewWriterSize(os.Stdout, 1<<16)
	defer out.Flush()
	if cfg.explain {
		fatal(fmt.Errorf("-explain is not supported with -nodes; run without -nodes against local files"))
	}

	start := time.Now()
	rows, err := coord.QueryContext(ctx, sql)
	if err != nil {
		fatal(err)
	}
	defer rows.Close()
	if cfg.header && !cfg.quiet {
		fmt.Fprintln(out, strings.Join(rows.Columns(), "\t"))
	}
	var n int64
	for rows.Next() {
		n++
		if cfg.quiet {
			continue
		}
		if _, err := fmt.Fprintln(out, table.FormatRow(rows.Row())); err != nil {
			fatal(err)
		}
	}
	if err := rows.Err(); err != nil {
		fatal(err)
	}
	rows.Close()
	out.Flush()
	st := rows.Stats()
	fmt.Fprintf(os.Stderr, "%d rows in %s from %d nodes\n",
		n, time.Since(start).Round(time.Millisecond), len(coord.Nodes()))
	if cfg.stats {
		fmt.Fprintln(os.Stderr, indent(st.String()))
	}
}

// indent prefixes every line for the stderr stats block.
func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvq:", err)
	os.Exit(1)
}
