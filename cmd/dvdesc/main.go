// Command dvdesc works with meta-data descriptors: it validates them,
// pretty-prints the canonical text form, converts between the text
// language and its XML embedding (paper §3.1: "the description language
// ... can easily be embedded in an XML file"), and summarizes what a
// descriptor resolves to (schema, nodes, files, layouts).
//
// Usage:
//
//	dvdesc -in dataset.dvd                  # validate + summarize
//	dvdesc -in dataset.dvd -to xml          # convert to XML (stdout)
//	dvdesc -in dataset.xml -to text         # convert back
//	dvdesc -in dataset.dvd -print           # canonical text form
//	dvdesc check [-json] FILE...            # compile-time checker
//
// The check subcommand runs the descriptor static checker
// (internal/metadata/lint): positioned file:line:col diagnostics for
// layout/schema problems, without touching any data file. It exits 1
// when any error-severity diagnostic is reported, 0 otherwise (warnings
// alone do not fail the check).
package main

import (
	"flag"
	"fmt"
	"os"

	"datavirt/internal/afc"
	"datavirt/internal/metadata"
	desclint "datavirt/internal/metadata/lint"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "check" {
		runCheck(os.Args[2:])
		return
	}
	in := flag.String("in", "", "descriptor file (text or XML; auto-detected)")
	to := flag.String("to", "", "convert: text or xml (to stdout)")
	print := flag.Bool("print", false, "print the canonical text form")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "usage: dvdesc -in FILE [-to text|xml] [-print]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	d, err := metadata.ParseFile(*in)
	if err != nil {
		fatal(err)
	}
	switch *to {
	case "":
	case "text":
		fmt.Print(d.String())
		return
	case "xml":
		out, err := metadata.ToXML(d)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	default:
		fatal(fmt.Errorf("unknown -to %q (want text or xml)", *to))
	}
	if *print {
		fmt.Print(d.String())
		return
	}

	// Summary: compile the plan and report what the descriptor binds.
	plan, err := afc.Compile(d)
	if err != nil {
		fatal(err)
	}
	sch := plan.Schema
	fmt.Printf("descriptor: valid\n")
	fmt.Printf("dataset:    %s (schema %s, %d attributes, %d bytes/row)\n",
		d.Storage.DatasetName, sch.Name(), sch.NumAttrs(), sch.RowBytes())
	nodes := map[string]bool{}
	for _, dir := range d.Storage.Dirs {
		nodes[dir.Node] = true
	}
	fmt.Printf("storage:    %d directories on %d nodes\n", len(d.Storage.Dirs), len(nodes))
	files := 0
	for _, lf := range plan.DataLeaves {
		files += len(lf.Files)
	}
	for _, cl := range plan.ChunkedLeaves {
		files += len(cl.Files)
	}
	style := "dataspace"
	if len(plan.ChunkedLeaves) > 0 {
		style = "chunked+indexed"
	}
	fmt.Printf("layout:     %d leaf datasets (%s), %d data files, %.1f MB total\n",
		len(plan.DataLeaves)+len(plan.ChunkedLeaves), style, files,
		float64(plan.TotalDataBytes())/1e6)
	if groups, err := plan.Groups(); err == nil && len(plan.DataLeaves) > 0 {
		fmt.Printf("alignment:  %d file groups\n", len(groups))
	}
	fmt.Printf("available:  %v\n", plan.AvailableAttrs())
}

// runCheck implements `dvdesc check [-json] [-data ROOT] FILE...`.
func runCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	dataRoot := fs.String("data", "", "also check sparse index sidecar coverage against this data root")
	fs.Parse(args) //nolint:errcheck — ExitOnError
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dvdesc check [-json] [-data ROOT] FILE...")
		os.Exit(2)
	}
	var all []desclint.Diagnostic
	for _, path := range fs.Args() {
		ds, err := desclint.CheckFile(path)
		if err != nil {
			fatal(err)
		}
		all = append(all, ds...)
		if *dataRoot != "" {
			ds, err := desclint.CheckSidecarsFile(path, *dataRoot)
			if err != nil {
				fatal(err)
			}
			all = append(all, ds...)
		}
	}
	if *asJSON {
		if err := desclint.WriteJSON(os.Stdout, all); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if desclint.HasErrors(all) {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvdesc:", err)
	os.Exit(1)
}
