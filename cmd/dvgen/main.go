// Command dvgen generates the synthetic evaluation datasets (IPARS oil
// reservoir simulation output, Titan satellite sensor data) together
// with their meta-data descriptors and, for chunked data, their spatial
// index files.
//
// Usage:
//
//	dvgen -dataset ipars -layout CLUSTER -out /data -rel 4 -steps 500 -grid 400 -parts 4
//	dvgen -dataset titan -out /data -points 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/sparse"
)

func main() {
	dataset := flag.String("dataset", "ipars", "dataset to generate: ipars or titan")
	out := flag.String("out", ".", "output root directory")
	seed := flag.Int64("seed", 604, "deterministic generation seed")
	buildIndex := flag.Bool("index", false, "also build sparse block-index sidecars (DATASPACE layouts)")

	layout := flag.String("layout", "CLUSTER", "ipars layout: "+strings.Join(gen.IparsLayouts(), ", "))
	rel := flag.Int("rel", 4, "ipars: realizations")
	steps := flag.Int("steps", 500, "ipars: time steps")
	grid := flag.Int("grid", 400, "ipars: total grid points")
	parts := flag.Int("parts", 4, "ipars: grid partitions (CLUSTER layout)")
	attrs := flag.Int("attrs", 17, "ipars: per-cell variables")
	replicas := flag.Int("replicas", 1, "ipars: replica-set width per partition (CLUSTER layout; chained node<i>..node<i+R-1 mod P>)")

	points := flag.Int("points", 1_000_000, "titan: sensor readings")
	xmax := flag.Int("xmax", 20000, "titan: X extent")
	ymax := flag.Int("ymax", 20000, "titan: Y extent")
	zmax := flag.Int("zmax", 200, "titan: Z (time) extent")
	tiles := flag.String("tiles", "16x16x8", "titan: space-time tiling TXxTYxTZ")
	nodes := flag.Int("nodes", 1, "titan: cluster nodes")
	flag.Parse()

	switch *dataset {
	case "ipars":
		spec := gen.IparsSpec{
			Realizations: *rel, TimeSteps: *steps, GridPoints: *grid,
			Partitions: *parts, Attrs: *attrs, Replicas: *replicas, Seed: *seed,
		}
		descPath, err := gen.WriteIpars(*out, spec, *layout)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote IPARS dataset (%d rows, layout %s)\ndescriptor: %s\n",
			spec.IparsTotalRows(), *layout, descPath)
		if *buildIndex {
			buildSidecars(descPath, *out)
		}
	case "titan":
		var tx, ty, tz int
		if _, err := fmt.Sscanf(*tiles, "%dx%dx%d", &tx, &ty, &tz); err != nil {
			fatal(fmt.Errorf("bad -tiles %q: %v", *tiles, err))
		}
		spec := gen.TitanSpec{
			Points: *points, XMax: *xmax, YMax: *ymax, ZMax: *zmax,
			TilesX: tx, TilesY: ty, TilesZ: tz, Nodes: *nodes, Seed: *seed,
		}
		descPath, err := gen.WriteTitan(*out, spec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote TITAN dataset (%d points, %d bytes/record)\ndescriptor: %s\n",
			spec.Points, gen.TitanRecordBytes, descPath)
		if *buildIndex {
			buildSidecars(descPath, *out)
		}
	default:
		fatal(fmt.Errorf("unknown dataset %q (want ipars or titan)", *dataset))
	}
}

// buildSidecars builds sparse block-index sidecars next to every
// DATASPACE data file the freshly generated descriptor describes.
// Chunked (DATAINDEX-served) leaves have their own spatial index and
// are skipped by BuildDataset.
func buildSidecars(descPath, root string) {
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		fatal(err)
	}
	n, err := sparse.BuildDataset(d, sparse.NodeResolver(root), sparse.BuildOptions{}, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d sparse index sidecars\n", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvgen:", err)
	os.Exit(1)
}
