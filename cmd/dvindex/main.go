// Command dvindex builds and verifies persistent sparse block indexes
// (sidecar files, see internal/sparse) for the DATASPACE data files of
// an existing dataset. A sidecar holds per-block min/max zone maps plus
// a coarse multidimensional grid summary; the query engine intersects
// WHERE-clause ranges against them to skip blocks that cannot match.
//
// Usage:
//
//	dvindex -desc /data/ipars_I.dvd -root /data
//	dvindex -desc /data/ipars_I.dvd -root /data -block 65536 -grid-cells 32
//	dvindex verify -desc /data/ipars_I.dvd -root /data
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"datavirt/internal/metadata"
	"datavirt/internal/sparse"
)

func main() {
	args := os.Args[1:]
	verify := false
	if len(args) > 0 && args[0] == "verify" {
		verify = true
		args = args[1:]
	}
	fs := flag.NewFlagSet("dvindex", flag.ExitOnError)
	desc := fs.String("desc", "", "meta-data descriptor path (required)")
	root := fs.String("root", ".", "data root directory (root/<node>/<file>)")
	block := fs.Int64("block", 0, "zone-map block bytes (0 = default 64 KiB)")
	attrList := fs.String("attrs", "", "comma-separated attributes to index (default: all stored)")
	gridAttrs := fs.String("grid-attrs", "", "comma-separated grid dimensions (default: automatic)")
	gridCells := fs.Int("grid-cells", 0, "grid cells per dimension (0 = default 16)")
	quiet := fs.Bool("q", false, "suppress per-file output")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dvindex [verify] -desc FILE -root DIR [options]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *desc == "" {
		fs.Usage()
		os.Exit(2)
	}
	d, err := metadata.ParseFile(*desc)
	if err != nil {
		fatal(err)
	}
	logf := func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	resolve := sparse.NodeResolver(*root)
	if verify {
		n, err := sparse.VerifyDataset(d, resolve, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("verified %d sidecars\n", n)
		return
	}
	opt := sparse.BuildOptions{
		BlockBytes: *block,
		Attrs:      splitList(*attrList),
		GridAttrs:  splitList(*gridAttrs),
		GridCells:  *gridCells,
	}
	n, err := sparse.BuildDataset(d, resolve, opt, logf)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d sidecars\n", n)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvindex:", err)
	os.Exit(1)
}
