// Package-level benchmarks: one testing.B benchmark per table/figure of
// the paper's evaluation, each delegating to the experiment harness in
// internal/bench at smoke scale (the dvbench command runs the same
// experiments at full scale and prints the paper-style tables; see
// EXPERIMENTS.md for the recorded full-scale results).
//
// Datasets are generated once per benchmark binary run into a shared
// temporary workspace and reused across iterations, so iteration time
// measures query processing, not data generation.
package main

import (
	"os"
	"testing"

	"datavirt/internal/bench"
)

// benchCfg builds the shared configuration. Scale is kept small so the
// full `go test -bench=.` sweep stays in CI-friendly time; dvbench is
// the tool for paper-scale runs.
func benchCfg(b *testing.B) bench.Config {
	b.Helper()
	dir := os.Getenv("DVBENCH_WORKDIR")
	if dir == "" {
		dir = os.TempDir() + "/datavirt-bench"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	return bench.Config{WorkDir: dir, Scale: 0.25, Trials: 1}
}

func runExperiment(b *testing.B, id string) {
	cfg := benchCfg(b)
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	// Prime datasets (and caches) outside the timed loop.
	if _, err := e.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_TitanVsRowstore reproduces Figure 6 (with the Figure 7
// query set): the five Titan queries on the PostgreSQL-like rowstore
// versus datavirt.
func BenchmarkFig6_TitanVsRowstore(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig9a_LayoutsQ1 reproduces Figure 9(a): the full-scan query
// across the hand-written L0 baseline and layouts L0, I–VI.
func BenchmarkFig9a_LayoutsQ1(b *testing.B) { runExperiment(b, "fig9a") }

// BenchmarkFig9b_LayoutsQ2to5 reproduces Figure 9(b): Figure 8's
// queries 2–5 across the same eight variants.
func BenchmarkFig9b_LayoutsQ2to5(b *testing.B) { runExperiment(b, "fig9b") }

// BenchmarkFig10_Scalability reproduces Figure 10: a fixed query over a
// fixed dataset re-partitioned across 1–8 data-source nodes, hand
// versus generated.
func BenchmarkFig10_Scalability(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11a_IparsQuerySize reproduces Figure 11(a): Ipars
// execution time with growing query windows, hand versus generated.
func BenchmarkFig11a_IparsQuerySize(b *testing.B) { runExperiment(b, "fig11a") }

// BenchmarkFig11b_TitanQuerySize reproduces Figure 11(b): Titan
// execution time with growing spatial windows, hand versus generated.
func BenchmarkFig11b_TitanQuerySize(b *testing.B) { runExperiment(b, "fig11b") }

// BenchmarkAblationIndex measures the generated index function's chunk
// pruning against reading every chunk (ours; DESIGN.md A1).
func BenchmarkAblationIndex(b *testing.B) { runExperiment(b, "ablation-index") }

// BenchmarkAblationChunks measures chunked+indexed storage against a
// monolithic file (ours; DESIGN.md A1).
func BenchmarkAblationChunks(b *testing.B) { runExperiment(b, "ablation-chunk") }

// BenchmarkAblationCoalesce measures merging contiguous aligned file
// chunks before extraction (ours; DESIGN.md A1).
func BenchmarkAblationCoalesce(b *testing.B) { runExperiment(b, "ablation-coalesce") }
