// Distributed execution: the deployment the paper evaluates — a dataset
// declustered across the nodes of a cluster, one STORM node server per
// node, and a remote client that submits SQL and receives the selected
// tuples, partitioned among its processors by the server-side partition
// generation service.
//
// The program simulates a 4-node cluster in one process (four TCP node
// servers on loopback), runs a remote query (the paper's Ipars Query 5
// class, "accessing the data from a remote client"), and then a
// partitioned query delivering tuples to two simulated client
// processors by hash of TIME.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"datavirt/internal/cluster"
	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/metadata"
	"datavirt/internal/storm"
)

func main() {
	root, err := os.MkdirTemp("", "datavirt-cluster")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// Decluster the study across 4 nodes (Figure 4's physical layout).
	spec := gen.IparsSpec{
		Realizations: 2, TimeSteps: 100, GridPoints: 800, Partitions: 4,
		Attrs: 17, Seed: 3,
	}
	descPath, err := gen.WriteIpars(root, spec, "CLUSTER")
	if err != nil {
		log.Fatal(err)
	}
	d, err := metadata.ParseFile(descPath)
	if err != nil {
		log.Fatal(err)
	}

	// One node server per cluster node.
	addrs := map[string]string{}
	for i := 0; i < spec.Partitions; i++ {
		svc, err := core.Open(descPath, root)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("node%d", i)
		node, err := cluster.StartNode(context.Background(), name, svc, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		addrs[name] = node.Addr()
		fmt.Printf("started node server %s on %s\n", name, node.Addr())
	}

	// The remote client: a coordinator multiplexing queries over pooled
	// node sessions. Close releases the persistent connections.
	coord, err := cluster.NewCoordinator(d, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	// Remote queries carry a context: the deadline is forwarded to every
	// node server, which aborts its extraction if the client gives up.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sql := "SELECT * FROM IparsData WHERE TIME > 50 AND TIME < 55"
	fmt.Printf("\n> %s\n", sql)
	// The same streaming-cursor API as local execution (core.Service).
	res, err := coord.QueryContext(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	var rows int64
	for res.Next() {
		rows++
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	res.Close()
	st := res.Stats()
	fmt.Printf("received %d tuples from %d nodes\n", rows, len(coord.Nodes()))
	fmt.Printf("cluster-wide extraction stats: scanned %d rows, read %.1f MB\n",
		st.RowsScanned, float64(st.BytesRead)/1e6)
	fmt.Printf("per-stage times: plan %s, index %s, extract %s (slowest node), net %s\n",
		st.PlanTime.Round(10e3), st.IndexTime.Round(10e3),
		st.ExtractTime.Round(10e3), st.NetTime.Round(10e3))

	// Partitioned delivery: the client program runs on two processors;
	// the nodes tag each tuple with its destination (partition
	// generation at the server), the data mover routes it.
	fmt.Printf("\n> same query, hash-partitioned on TIME across 2 client processors\n")
	sinks := []storm.Sink{&storm.SliceSink{}, &storm.SliceSink{}}
	if _, err := coord.QueryPartitionedContext(ctx, sql, storm.PartitionSpec{
		Scheme: storm.HashAttr, NumDests: 2, Attr: "TIME",
	}, sinks); err != nil {
		log.Fatal(err)
	}
	for i, s := range sinks {
		got := s.(*storm.SliceSink).Rows
		times := map[int64]bool{}
		for _, r := range got {
			times[r[1].AsInt()] = true
		}
		var ts []int64
		for t := range times {
			ts = append(ts, t)
		}
		fmt.Printf("processor %d: %5d tuples, TIME values %v\n", i, len(got), ts)
	}
}
