// Quickstart: virtualize a small flat-file dataset and query it with
// SQL in under a minute.
//
// The program (1) generates a tiny IPARS-style oil-reservoir dataset in
// the paper's Figure 4 cluster layout — binary flat files spread over
// four directory partitions, values of seventeen variables per grid
// cell per time step — together with its meta-data descriptor, then
// (2) compiles the descriptor into a data service and runs SQL
// subsetting queries against the virtual relational table.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/table"
)

func main() {
	root, err := os.MkdirTemp("", "datavirt-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// 1. Generate the dataset + descriptor (normally your data already
	// exists and you only write the descriptor).
	spec := gen.IparsSpec{
		Realizations: 2, TimeSteps: 50, GridPoints: 200, Partitions: 4,
		Attrs: 17, Seed: 1,
	}
	descPath, err := gen.WriteIpars(root, spec, "CLUSTER")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d virtual rows in %d flat files under %s\n",
		spec.IparsTotalRows(), 4*(1+spec.Realizations), root)

	// Show a fragment of the descriptor — the only thing a user writes.
	desc, _ := os.ReadFile(descPath)
	fmt.Printf("\n--- descriptor (%s) ---\n%s...\n", filepath.Base(descPath), desc[:300])

	// 2. Compile the data service. All meta-data analysis happens here,
	// once; queries then run with no per-query code generation.
	svc, err := core.Open(descPath, root)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Query the virtual table through the streaming cursor. The
	// context cancels the extraction if we stop early (or on timeout);
	// Rows.Stats() reports what the query cost after the cursor drains.
	ctx := context.Background()
	for _, sql := range []string{
		"SELECT * FROM IparsData WHERE REL = 0 AND TIME = 25 AND SOIL > 0.9",
		"SELECT X, Y, Z, SOIL FROM IparsData WHERE TIME BETWEEN 10 AND 12 AND SPEED(OILVX, OILVY, OILVZ) < 5",
	} {
		fmt.Printf("\n> %s\n", sql)
		prep, err := svc.PrepareContext(ctx, sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("index pruned to %d aligned file chunks; ranges: %s\n",
			len(prep.AFCs), prep.Ranges)
		rows, err := prep.QueryContext(ctx, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for rows.Next() {
			if n < 5 {
				fmt.Println("  " + table.FormatRow(rows.Row()))
			}
			n++
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		rows.Close()
		st := rows.Stats()
		fmt.Printf("  ... %d rows total (scanned %d, read %d bytes; plan %s, index %s, extract %s)\n",
			n, st.RowsScanned, st.BytesRead,
			st.PlanTime.Round(10e3), st.IndexTime.Round(10e3), st.ExtractTime.Round(10e3))
	}
}
