// Satellite data processing: the paper's second motivating application
// (§2.2). Sensor readings are chunked over space-time with a spatial
// index; a typical analysis selects a rectangular region and a time
// period, then builds a composite image where "each pixel ... is
// computed by selecting the 'best' sensor value that maps to the
// associated grid point".
//
// The program generates a Titan dataset, queries a space-time window
// through the virtualization layer, composites the maximum S1 reading
// per pixel, and renders the result as ASCII art.
//
// Run with:
//
//	go run ./examples/satellite
package main

import (
	"fmt"
	"log"
	"os"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/table"
)

func main() {
	root, err := os.MkdirTemp("", "datavirt-satellite")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	spec := gen.TitanSpec{
		Points: 400_000, XMax: 20000, YMax: 20000, ZMax: 200,
		TilesX: 16, TilesY: 16, TilesZ: 8, Nodes: 1, Seed: 7,
	}
	descPath, err := gen.WriteTitan(root, spec)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.Open(descPath, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d sensor readings, chunked %dx%dx%d with an R-tree index\n\n",
		spec.Points, spec.TilesX, spec.TilesY, spec.TilesZ)

	// A region and a time period, as in the paper's query pattern.
	const x0, x1, y0, y1, t0, t1 = 2000, 12000, 2000, 12000, 50, 150
	sql := fmt.Sprintf(
		"SELECT X, Y, S1 FROM TitanData WHERE X >= %d AND X <= %d AND Y >= %d AND Y <= %d AND Z >= %d AND Z <= %d",
		x0, x1, y0, y1, t0, t1)
	prep, err := svc.Prepare(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("> %s\n", sql)
	fmt.Printf("spatial index selected %d of the dataset's chunks\n\n", len(prep.AFCs))

	// Composite: project onto a W x H pixel grid, keep the best (max)
	// S1 per pixel.
	const W, H = 64, 32
	img := make([][]float64, H)
	for i := range img {
		img[i] = make([]float64, W)
		for j := range img[i] {
			img[i][j] = -1
		}
	}
	var rows int64
	if _, err := prep.Run(core.Options{}, func(r table.Row) error {
		x, y, s1 := r[0].AsFloat(), r[1].AsFloat(), r[2].AsFloat()
		px := int((x - x0) * (W - 1) / (x1 - x0))
		py := int((y - y0) * (H - 1) / (y1 - y0))
		if s1 > img[py][px] {
			img[py][px] = s1
		}
		rows++
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composited %d readings into a %dx%d image (max S1 per pixel):\n\n", rows, W, H)

	shades := []byte(" .:-=+*#%@")
	for _, line := range img {
		buf := make([]byte, W)
		for j, v := range line {
			if v < 0 {
				buf[j] = ' '
				continue
			}
			k := int(v * float64(len(shades)-1))
			if k >= len(shades) {
				k = len(shades) - 1
			}
			buf[j] = shades[k]
		}
		fmt.Println(string(buf))
	}
}
