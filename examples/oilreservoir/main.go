// Oil reservoir management: the paper's first motivating application
// (§2.2). A study simulates many geostatistical realizations of a
// reservoir; analysis queries subset the terabyte-scale output by
// realization, time window and physical criteria — e.g. "find the
// largest bypassed oil regions between time T1 and T2 in realization A".
//
// Bypassed oil: cells that still hold substantial oil (high SOIL) but
// are barely flowing (low |oil velocity|) — produced here with the
// paper's example-query style:
//
//	SELECT * FROM IparsData
//	WHERE REL IN (...) AND TIME >= T1 AND TIME <= T2
//	  AND SOIL >= 0.7 AND SPEED(OILVX, OILVY, OILVZ) <= 30.0
//
// The program generates a study, runs the bypassed-oil query per
// realization, and reports which realization has the largest connected
// bypassed region (greedy 3-D flood fill over returned cells).
//
// Run with:
//
//	go run ./examples/oilreservoir
package main

import (
	"fmt"
	"log"
	"os"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/table"
)

type cell struct{ x, y, z int }

func main() {
	root, err := os.MkdirTemp("", "datavirt-oil")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	spec := gen.IparsSpec{
		Realizations: 4, TimeSteps: 100, GridPoints: 1000, Partitions: 4,
		Attrs: 17, Seed: 42,
	}
	descPath, err := gen.WriteIpars(root, spec, "CLUSTER")
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.Open(descPath, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("study: %d realizations x %d time steps x %d cells (%d variables each)\n\n",
		spec.Realizations, spec.TimeSteps, spec.GridPoints, spec.Attrs)

	const t1, t2 = 40, 60
	bestRel, bestSize := -1, 0
	for rel := 0; rel < spec.Realizations; rel++ {
		sql := fmt.Sprintf(
			"SELECT X, Y, Z FROM IparsData WHERE REL = %d AND TIME >= %d AND TIME <= %d "+
				"AND SOIL >= 0.7 AND SPEED(OILVX, OILVY, OILVZ) <= 12.0", rel, t1, t2)
		prep, err := svc.Prepare(sql)
		if err != nil {
			log.Fatal(err)
		}
		// A cell is "bypassed" if it satisfies the criteria at any step
		// in the window; collect the distinct cells.
		cells := map[cell]bool{}
		if _, err := prep.Run(core.Options{Parallel: true}, func(row table.Row) error {
			cells[cell{int(row[0].AsFloat()), int(row[1].AsFloat()), int(row[2].AsFloat())}] = true
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		size := largestRegion(cells)
		fmt.Printf("realization %d: %4d bypassed cells, largest connected region %4d\n",
			rel, len(cells), size)
		if size > bestSize {
			bestRel, bestSize = rel, size
		}
	}
	fmt.Printf("\nlargest bypassed oil region between T%d and T%d: realization %d (%d cells)\n",
		t1, t2, bestRel, bestSize)
}

// largestRegion finds the biggest 6-connected component.
func largestRegion(cells map[cell]bool) int {
	seen := map[cell]bool{}
	best := 0
	var stack []cell
	for c := range cells {
		if seen[c] {
			continue
		}
		size := 0
		stack = append(stack[:0], c)
		seen[c] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, d := range []cell{
				{cur.x + 1, cur.y, cur.z}, {cur.x - 1, cur.y, cur.z},
				{cur.x, cur.y + 1, cur.z}, {cur.x, cur.y - 1, cur.z},
				{cur.x, cur.y, cur.z + 1}, {cur.x, cur.y, cur.z - 1},
			} {
				if cells[d] && !seen[d] {
					seen[d] = true
					stack = append(stack, d)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return best
}
