// Layout independence: the paper's central promise is that "handling a
// new dataset layout or virtual view only involves writing a new
// meta-data descriptor" — no new extraction code.
//
// This program writes the same oil-reservoir data in all seven
// single-node physical layouts of the evaluation (the original L0 with
// one file per variable, plus layouts I–VI of §5), prints each
// descriptor's layout component, runs the same SQL query against every
// layout, and verifies the answers are identical.
//
// Run with:
//
//	go run ./examples/layouts
package main

import (
	"crypto/sha256"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"datavirt/internal/core"
	"datavirt/internal/gen"
	"datavirt/internal/table"
)

func main() {
	spec := gen.IparsSpec{
		Realizations: 2, TimeSteps: 30, GridPoints: 200, Partitions: 1,
		Attrs: 17, Seed: 11,
	}
	sql := "SELECT TIME, X, Y, SOIL FROM IparsData WHERE TIME BETWEEN 10 AND 15 AND SOIL > 0.8"
	fmt.Printf("query: %s\n\n", sql)

	var refDigest string
	var refRows int
	layouts := []string{"L0", "I", "II", "III", "IV", "V", "VI"}
	for _, layoutID := range layouts {
		root, err := os.MkdirTemp("", "datavirt-layouts")
		if err != nil {
			log.Fatal(err)
		}
		descPath, err := gen.WriteIpars(root, spec, layoutID)
		if err != nil {
			log.Fatal(err)
		}

		// Count the data files of this layout.
		files := 0
		filepath.Walk(filepath.Join(root, "node0"), func(_ string, info os.FileInfo, err error) error { //nolint:errcheck
			if err == nil && info != nil && !info.IsDir() {
				files++
			}
			return nil
		})

		svc, err := core.Open(descPath, root)
		if err != nil {
			log.Fatal(err)
		}
		var lines []string
		prep, err := svc.Prepare(sql)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := prep.Run(core.Options{}, func(r table.Row) error {
			lines = append(lines, table.FormatRow(r))
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		// Order-independent digest of the result set.
		sort.Strings(lines)
		digest := fmt.Sprintf("%x", sha256.Sum256([]byte(strings.Join(lines, "\n"))))[:12]

		status := "reference"
		if refDigest == "" {
			refDigest, refRows = digest, len(lines)
		} else if digest == refDigest {
			status = "identical"
		} else {
			status = "MISMATCH!"
		}
		fmt.Printf("layout %-4s %3d data files, %4d aligned chunks, %4d rows, digest %s  [%s]\n",
			layoutID, files, len(prep.AFCs), len(lines), digest, status)
		os.RemoveAll(root)
	}
	fmt.Printf("\nall %d layouts answered the query with the same %d rows —\n"+
		"only the descriptors differ; no layout-specific code was written.\n",
		len(layouts), refRows)
}
